"""Campaign-throughput benchmark for the ask/tell hot path.

Measures how fast an optimization campaign turns the suggest → evaluate →
tell crank, comparing three arms over the same search space and seed:

- **baseline** — the pre-batching protocol: one ``ask()`` per trial with a
  surrogate refit on every ask (``refit_every=1``), an unbounded fitted-model
  history, and an eager ``result()`` rebuild after every ``tell`` (what the
  optimizer used to do internally).
- **fast** — the batched hot path through :func:`repro.search.run`: asks are
  drawn eight at a time from a single surrogate fit, refits are throttled
  (``refit_every=8``), the model history is off, and results are lazy.
- **flat** — refits off the ask path entirely: incremental per-tell
  ``partial_fit`` updates, full refits on the background worker with
  parallel tree fitting, over a longer campaign. The payload's
  ``suggest_head`` / ``suggest_tail`` blocks hold the first-window vs
  last-window suggest percentiles; the benchmark asserts the tail stays
  flat (p99 within 2× of the head) as the trial count grows.

The objective is a cheap analytic quadratic so the measurement isolates the
optimizer-side cost (suggest + tell), not the evaluation. Results land in
``benchmarks/results/BENCH_campaign.json``: trials/sec per arm, the
suggest+tell speedup, p50/p90/p99 suggest and tell latencies, the flat arm's
head/tail split and fit counters, a sync-determinism marker, and peak RSS.

Scale: 500 trials (flat arm 1000) by default; set ``REPRO_BENCH_SMOKE=1``
for a 120-trial (flat arm 360) smoke run (used by CI).

Set ``REPRO_BENCH_SERVE=1`` to run the fast arm with the live telemetry
plane attached (status board + embedded HTTP monitor + a background
scraper hammering ``/metrics`` and ``/status``): the measured suggest/tell
percentiles then include the monitor's hot-path cost, and the perf gate
downstream verifies serving does not regress the campaign.
"""

from __future__ import annotations

import contextlib
import os
import resource
import threading
import time

import numpy as np

from benchmarks.conftest import save_results
from repro.bayesopt import Optimizer, Real, Space
from repro.search import run
from repro.search.algos import SurrogateSearch

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
SERVE = os.environ.get("REPRO_BENCH_SERVE", "") == "1"
N_TRIALS = 120 if SMOKE else 500
N_FLAT = 360 if SMOKE else 1000
WINDOW = 120  # head/tail window for the flat-arm percentile split
BATCH_SIZE = 8
REFIT_EVERY = 8
SEED = 2021


def _space() -> Space:
    return Space([
        Real(0.0, 1.0, name="a"),
        Real(0.0, 1.0, name="b"),
        Real(0.0, 1.0, name="c"),
    ])


def _objective(config: dict) -> float:
    return (
        (config["a"] - 0.25) ** 2
        + (config["b"] - 0.5) ** 2
        + (config["c"] - 0.75) ** 2
    )


def _peak_rss_mb() -> float:
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss / 1024.0


def _percentiles(samples: list[float]) -> dict[str, float]:
    arr = np.asarray(samples, dtype=float)
    return {
        "p50_ms": float(np.percentile(arr, 50) * 1e3),
        "p90_ms": float(np.percentile(arr, 90) * 1e3),
        "p99_ms": float(np.percentile(arr, 99) * 1e3),
    }


def _run_baseline(n: int) -> dict:
    """Legacy per-trial protocol: refit-per-ask, model history, eager result."""
    space = _space()
    opt = Optimizer(space, random_state=SEED, refit_every=1, keep_models=n)
    names = space.names
    suggest_s: list[float] = []
    tell_s: list[float] = []
    wall0 = time.perf_counter()
    for _ in range(n):
        t0 = time.perf_counter()
        point = opt.ask()
        t1 = time.perf_counter()
        y = _objective(dict(zip(names, point)))
        t2 = time.perf_counter()
        opt.tell(point, y)
        opt.result()  # the old tell() rebuilt this eagerly every time
        t3 = time.perf_counter()
        suggest_s.append(t1 - t0)
        tell_s.append(t3 - t2)
    wall = time.perf_counter() - wall0
    opt_time = sum(suggest_s) + sum(tell_s)
    return {
        "trials": n,
        "wall_s": wall,
        "opt_time_s": opt_time,
        "trials_per_sec": n / wall,
        "opt_trials_per_sec": n / opt_time,
        "suggest": _percentiles(suggest_s),
        "tell": _percentiles(tell_s),
        "models_kept": len(opt.models),
        "best": opt.result().fun,
    }


@contextlib.contextmanager
def _serving(n: int):
    """With ``REPRO_BENCH_SERVE=1``: a status board, a live monitor, and a
    background scraper polling ``/metrics`` + ``/status`` while the timed
    arm runs — so the measurement includes the telemetry plane's cost on
    the hot path. Yields the monitor (or ``None`` when serving is off)."""
    if not SERVE:
        yield None
        return
    import urllib.request

    from repro.observability.live import LiveMonitor, StatusBoard, set_status_board

    set_status_board(StatusBoard(name="bench_campaign", num_samples=n, mode="min"))
    monitor = LiveMonitor("127.0.0.1", 0, name="bench_campaign")
    monitor.start()
    stop = threading.Event()

    def scrape() -> None:
        while not stop.wait(0.2):
            for endpoint in ("/metrics", "/status"):
                try:
                    with urllib.request.urlopen(monitor.url + endpoint, timeout=5) as r:
                        r.read()
                except OSError:
                    pass

    scraper = threading.Thread(target=scrape, name="bench-scraper", daemon=True)
    scraper.start()
    try:
        yield monitor
    finally:
        stop.set()
        scraper.join(timeout=5)
        monitor.stop()
        set_status_board(None)


def _run_fast(n: int) -> dict:
    """Batched hot path through the trial runner, costs from Trial.cost."""
    space = _space()
    search = SurrogateSearch(
        space,
        batch_size=BATCH_SIZE,
        random_state=SEED,
        refit_every=REFIT_EVERY,
    )
    with _serving(n) as monitor:
        wall0 = time.perf_counter()
        analysis = run(
            _objective,
            space=space,
            metric="loss",
            num_samples=n,
            search_alg=search,
            name="bench_campaign",
        )
        wall = time.perf_counter() - wall0
        serve_stats = monitor.self_stats() if monitor is not None else None
    suggest_s = [t.cost.get("suggest_s", 0.0) for t in analysis.trials]
    tell_s = [t.cost.get("tell_s", 0.0) for t in analysis.trials]
    opt_time = sum(suggest_s) + sum(tell_s)
    return {
        "trials": len(analysis.trials),
        "wall_s": wall,
        "opt_time_s": opt_time,
        "trials_per_sec": len(analysis.trials) / wall,
        "opt_trials_per_sec": len(analysis.trials) / opt_time,
        "suggest": _percentiles(suggest_s),
        "tell": _percentiles(tell_s),
        "models_kept": len(search.optimizer.models),
        "best": analysis.best_result,
        "serve": serve_stats,
    }


def _run_flat(n: int) -> dict:
    """Long campaign with refits off the ask path: incremental per-tell
    updates plus background full refits with parallel tree fitting. Records
    the first-window vs last-window suggest percentiles so the payload can
    show (and the test can assert) that the tail stays flat as trials grow.
    """
    space = _space()
    opt = Optimizer(
        space,
        random_state=SEED,
        refit_every=REFIT_EVERY,
        incremental=True,
        background_refit=True,
        fit_jobs=2,
    )
    names = space.names
    suggest_s: list[float] = []
    tell_s: list[float] = []
    wall0 = time.perf_counter()
    try:
        for _ in range(n):
            t0 = time.perf_counter()
            point = opt.ask()
            t1 = time.perf_counter()
            y = _objective(dict(zip(names, point)))
            t2 = time.perf_counter()
            opt.tell(point, y)
            t3 = time.perf_counter()
            suggest_s.append(t1 - t0)
            tell_s.append(t3 - t2)
        wall = time.perf_counter() - wall0
        best = opt.result().fun
        n_fits = opt.n_fits
        n_background = opt.n_background_fits
    finally:
        opt.close()
    head = _percentiles(suggest_s[:WINDOW])
    tail = _percentiles(suggest_s[-WINDOW:])
    # A tiny absolute floor keeps the ratio meaningful when both windows
    # are sub-millisecond and dominated by scheduler noise.
    floor_ms = 5.0
    tail_ratio = tail["p99_ms"] / max(head["p99_ms"], floor_ms)
    return {
        "trials": n,
        "wall_s": wall,
        "trials_per_sec": n / wall,
        "suggest": _percentiles(suggest_s),
        "suggest_head": head,
        "suggest_tail": tail,
        "tell": _percentiles(tell_s),
        "tail_ratio_p99": tail_ratio,
        "n_full_fits": n_fits,
        "n_background_fits": n_background,
        "best": best,
    }


def _run_sync_determinism(n: int = 60) -> dict:
    """Two identical synchronous runs (background_refit off) must agree
    byte-for-byte — the deterministic fallback the docs promise."""

    def _once() -> tuple[list[float], float]:
        space = _space()
        opt = Optimizer(
            space, random_state=SEED, refit_every=REFIT_EVERY,
            background_refit=False,
        )
        names = space.names
        for _ in range(n):
            point = opt.ask()
            opt.tell(point, _objective(dict(zip(names, point))))
        result = opt.result()
        return [float(v) for v in result.func_vals], float(result.fun)

    vals_a, best_a = _once()
    vals_b, best_b = _once()
    return {
        "trials": n,
        "identical": vals_a == vals_b and best_a == best_b,
        "best": best_a,
    }


def test_campaign_throughput():
    fast = _run_fast(N_TRIALS)
    rss_after_fast = _peak_rss_mb()
    base = _run_baseline(N_TRIALS)
    flat = _run_flat(N_FLAT)
    determinism = _run_sync_determinism()

    speedup = base["opt_time_s"] / fast["opt_time_s"]
    payload = {
        "scale": "smoke" if SMOKE else "full",
        "serve": SERVE,
        "n_trials": N_TRIALS,
        "n_flat_trials": N_FLAT,
        "flat_window": WINDOW,
        "batch_size": BATCH_SIZE,
        "refit_every": REFIT_EVERY,
        "seed": SEED,
        "baseline": base,
        "fast": fast,
        "flat": flat,
        "sync_determinism": determinism,
        "suggest_tell_speedup": speedup,
        "peak_rss_mb": _peak_rss_mb(),
        "peak_rss_after_fast_mb": rss_after_fast,
    }
    save_results("BENCH_campaign", payload)

    print()
    print(f"campaign throughput ({payload['scale']}, {N_TRIALS} trials)")
    print(
        f"  baseline: {base['trials_per_sec']:7.1f} trials/s wall, "
        f"{base['opt_trials_per_sec']:7.1f} trials/s opt-side, "
        f"{base['models_kept']} models kept"
    )
    print(
        f"  fast:     {fast['trials_per_sec']:7.1f} trials/s wall, "
        f"{fast['opt_trials_per_sec']:7.1f} trials/s opt-side, "
        f"{fast['models_kept']} models kept"
    )
    print(f"  suggest+tell speedup: {speedup:.1f}x")
    print(
        f"  fast suggest p50/p90/p99: "
        f"{fast['suggest']['p50_ms']:.2f}/{fast['suggest']['p90_ms']:.2f}/"
        f"{fast['suggest']['p99_ms']:.2f} ms"
    )
    print(
        f"  fast tell p50/p90/p99: "
        f"{fast['tell']['p50_ms']:.2f}/{fast['tell']['p90_ms']:.2f}/"
        f"{fast['tell']['p99_ms']:.2f} ms"
    )
    print(
        f"  flat ({N_FLAT} trials): suggest p99 head/tail "
        f"{flat['suggest_head']['p99_ms']:.2f}/{flat['suggest_tail']['p99_ms']:.2f} ms "
        f"(ratio {flat['tail_ratio_p99']:.2f}), "
        f"{flat['n_full_fits']} blocking + {flat['n_background_fits']} background fits"
    )
    print(f"  sync determinism: {determinism['identical']}")
    print(f"  peak RSS: {payload['peak_rss_mb']:.1f} MB")
    if SERVE and fast.get("serve"):
        stats = fast["serve"]
        print(
            f"  live monitor: {stats['requests']} requests scraped, "
            f"{stats['sse_events_sent']} SSE events, "
            f"{stats['sse_events_dropped']} dropped"
        )

    # The hot-path rewrite must hold a >=5x suggest+tell advantage and keep
    # the fitted-model history flat (no per-trial model retention).
    assert speedup >= 5.0, f"expected >=5x suggest+tell speedup, got {speedup:.1f}x"
    assert fast["models_kept"] == 0
    assert fast["trials"] == N_TRIALS
    # Both arms optimize: sanity that batching didn't break convergence badly.
    assert fast["best"] < 0.5
    assert base["best"] < 0.5
    # Flat arm: with refits off the ask path, the suggest p99 at trial
    # N_FLAT must stay within 2x of the p99 over the first WINDOW trials,
    # and at most the initial model fit may have blocked an ask.
    assert flat["tail_ratio_p99"] <= 2.0, (
        f"suggest tail grew: head p99 {flat['suggest_head']['p99_ms']:.2f} ms, "
        f"tail p99 {flat['suggest_tail']['p99_ms']:.2f} ms"
    )
    assert flat["n_full_fits"] <= 1
    assert flat["n_background_fits"] >= 1
    assert flat["best"] < 0.5
    # And the synchronous fallback stays byte-deterministic.
    assert determinism["identical"]

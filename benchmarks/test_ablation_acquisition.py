"""Ablation — acquisition function: gp_hedge portfolio vs single functions.

Listing 1 sets ``acq_func="gp_hedge"``. This ablation compares the hedge
portfolio against each of its constituents (EI, PI, LCB) on the paper's
search problem.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, save_results
from repro.bayesopt import Optimizer
from repro.engine import AnalyticEngineModel, ThreadPoolConfig
from repro.plantnet import paper_search_space
from repro.utils.tables import Table

ACQS = ("gp_hedge", "EI", "PI", "LCB")
SEEDS = (0, 1, 2, 3, 4)
BUDGET = 25

_model = AnalyticEngineModel()


def _objective(point: list) -> float:
    http, download, simsearch, extract = point
    return _model.response_time(
        ThreadPoolConfig(http=http, download=download, extract=extract, simsearch=simsearch),
        80,
    )


def _campaign(acq: str, seed: int) -> float:
    opt = Optimizer(
        paper_search_space(),
        base_estimator="ET",
        n_initial_points=10,
        initial_point_generator="lhs",
        acq_func=acq,
        random_state=seed,
        acq_n_candidates=1000,
    )
    return opt.run(_objective, BUDGET).fun


@pytest.fixture(scope="module")
def outcomes():
    return {acq: [_campaign(acq, seed) for seed in SEEDS] for acq in ACQS}


def test_ablation_acquisition(benchmark, outcomes):
    benchmark.pedantic(lambda: _campaign("gp_hedge", 99), rounds=1, iterations=1)

    table = Table(
        ["acquisition", "mean best resp (s)", "std"],
        title=f"Ablation — acquisition function ({BUDGET} evaluations)",
    )
    rows = {}
    for acq, values in outcomes.items():
        rows[acq] = float(np.mean(values))
        table.add_row([acq, f"{rows[acq]:.3f}", f"{np.std(values):.3f}"])
    print_table(table)
    save_results("ablation_acquisition", rows)

    # The hedge portfolio is robust: within 2 % of the best single
    # acquisition on average (its whole point is not losing badly).
    best_single = min(rows[a] for a in ("EI", "PI", "LCB"))
    assert rows["gp_hedge"] <= best_single * 1.02

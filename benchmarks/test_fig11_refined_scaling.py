"""Fig. 11 — the three configurations across all workloads.

The paper: the refined optimum presents the best results at every
workload; refined-vs-baseline gains grow to 7.2 % / 6.3 % / 9.8 % at
80 / 120 / 140 simultaneous requests.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, save_results
from repro.plantnet import BASELINE, PRELIMINARY_OPTIMUM, REFINED_OPTIMUM
from repro.plantnet.paper import FIG11_GAINS_REFINED, WORKLOADS
from repro.utils.tables import Table

CONFIGS = {
    "baseline": BASELINE,
    "preliminary": PRELIMINARY_OPTIMUM,
    "refined": REFINED_OPTIMUM,
}


@pytest.fixture(scope="module")
def grid(scenario):
    return {
        (name, requests): scenario.run(config, requests)
        for name, config in CONFIGS.items()
        for requests in WORKLOADS
    }


def test_fig11_refined_scaling(benchmark, grid, scenario):
    benchmark.pedantic(
        lambda: scenario.run(REFINED_OPTIMUM, 140, repetitions=1), rounds=1, iterations=1
    )

    table = Table(
        ["requests", "baseline (s)", "preliminary (s)", "refined (s)", "refined gain", "paper gain"],
        title="Fig. 11 — user response time: baseline vs both optimums",
    )
    rows = {}
    for requests in WORKLOADS:
        base = grid[("baseline", requests)].user_response_time.mean
        pre = grid[("preliminary", requests)].user_response_time.mean
        ref = grid[("refined", requests)].user_response_time.mean
        gain = 1 - ref / base
        rows[requests] = {"baseline": base, "preliminary": pre, "refined": ref, "gain": gain}
        table.add_row(
            [
                requests,
                f"{base:.3f}",
                f"{pre:.3f}",
                f"{ref:.3f}",
                f"{gain:+.1%}",
                f"{FIG11_GAINS_REFINED[requests]:+.1%}",
            ]
        )
    print_table(table)
    save_results("fig11_refined_scaling", {str(k): v for k, v in rows.items()})

    for requests in WORKLOADS:
        row = rows[requests]
        # refined is the best (or ties preliminary within noise) everywhere
        assert row["refined"] < row["baseline"]
        assert row["refined"] <= row["preliminary"] * 1.01
        # gains in the paper's order of magnitude
        assert 0.02 <= row["gain"] <= 0.16

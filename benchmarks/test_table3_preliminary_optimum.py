"""Table III — finding the preliminary optimum with Bayesian optimization.

The paper's campaign (Listing 1): Extra-Trees surrogate, LHS initial
design, gp_hedge acquisition, concurrency limiter of 2; it converged after
9 guided evaluations to (54, 54, 7, 53) cutting user response time from
2.657 s to 2.484 s (−7 %) at 80 simultaneous requests.

We re-run the same campaign against the simulated engine. The response
surface has a broad flat basin around the optimum (H and S barely matter
past ~50), so the *found configuration* may differ from 54/54/7/53 while
achieving the same response time — exactly the "multiple minima" caveat
the paper itself attaches to the word *preliminary*.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DURATION, WARMUP, print_table, save_results
from repro.plantnet import BASELINE, PlantNetOptimization
from repro.plantnet.paper import TABLE_III
from repro.utils.tables import Table

NUM_SAMPLES = 30
N_INITIAL = 15


@pytest.fixture(scope="module")
def campaign(tmp_path_factory, sweep_scenario):
    workdir = tmp_path_factory.mktemp("table3")
    optimization = PlantNetOptimization(
        simultaneous_requests=80,
        duration=DURATION,
        warmup=WARMUP,
        repetitions=1,
        n_initial_points=N_INITIAL,
        num_samples=NUM_SAMPLES,
        max_concurrent=2,
        workdir=workdir,
        seed=2021,
    )
    summary = optimization.run()
    baseline = sweep_scenario.run(BASELINE, 80)
    return summary, baseline


def test_table3_preliminary_optimum(benchmark, campaign, sweep_scenario):
    summary, baseline = campaign

    def validate_best():
        # re-measure the found optimum independently (fresh seed)
        from repro.engine.config import ThreadPoolConfig

        cfg = ThreadPoolConfig.from_dict(summary.best_configuration)
        return sweep_scenario.run(cfg, 80, seed=77)

    best_run = benchmark.pedantic(validate_best, rounds=1, iterations=1)

    paper_base = TABLE_III["baseline"]["user_resp_time"]
    paper_pre = TABLE_III["preliminary"]["user_resp_time"]
    found = summary.best_configuration
    table = Table(
        ["Thread pool", "paper baseline", "paper preliminary", "our baseline", "our found optimum"],
        title="Table III — baseline vs preliminary optimum",
    )
    paper_pre_cfg = TABLE_III["preliminary"]["config"]
    for pool in ("http", "download", "extract", "simsearch"):
        table.add_row(
            [
                pool,
                getattr(TABLE_III["baseline"]["config"], pool),
                getattr(paper_pre_cfg, pool),
                getattr(BASELINE, pool),
                found[pool],
            ]
        )
    measured_base = baseline.user_response_time.mean
    measured_best = best_run.user_response_time.mean
    table.add_row(["User response time", paper_base, paper_pre, f"{measured_base:.3f}", f"{measured_best:.3f}"])
    print_table(table)
    print(
        f"\nconverged after {summary.convergence_evaluation} evaluations "
        f"(paper: {TABLE_III['convergence_evaluations']} past the initial design); "
        f"{summary.n_evaluations} total"
    )
    save_results(
        "table3_preliminary_optimum",
        {
            "found_configuration": found,
            "found_value": summary.best_value,
            "revalidated_value": measured_best,
            "baseline_value": measured_base,
            "convergence_evaluation": summary.convergence_evaluation,
            "paper": {"baseline": paper_base, "preliminary": paper_pre},
        },
    )

    # Shape assertions:
    gain = 1.0 - measured_best / measured_base
    assert gain > 0.025, f"optimum must clearly beat the baseline (gain={gain:.3f})"
    assert gain < 0.20, "gain should stay in the paper's order of magnitude"
    # found config respects Eq. 2 bounds and grows the HTTP pool (the paper's
    # '35 % more simultaneous users' lever)
    assert found["http"] > BASELINE.http
    assert 3 <= found["extract"] <= 9
    # the measured optimum lands near the paper's preliminary value
    assert measured_best == pytest.approx(paper_pre, rel=0.08)

"""Fig. 8 — baseline vs preliminary optimum across workloads.

The paper scales the workload over 80 / 120 / 140 simultaneous requests;
the preliminary optimum outperforms the baseline at every point (gains of
6.9 %, 2.2 % and 6.7 % respectively).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, save_results
from repro.plantnet import BASELINE, PRELIMINARY_OPTIMUM
from repro.plantnet.paper import FIG8_GAINS_PRELIMINARY, WORKLOADS
from repro.utils.tables import Table


@pytest.fixture(scope="module")
def results(scenario):
    out = {}
    for requests in WORKLOADS:
        out[requests] = {
            "baseline": scenario.run(BASELINE, requests),
            "preliminary": scenario.run(PRELIMINARY_OPTIMUM, requests),
        }
    return out


def test_fig8_workload_scaling(benchmark, results, scenario):
    benchmark.pedantic(
        lambda: scenario.run(PRELIMINARY_OPTIMUM, 80, repetitions=1),
        rounds=1,
        iterations=1,
    )

    table = Table(
        ["requests", "baseline (s)", "preliminary (s)", "gain", "paper gain"],
        title="Fig. 8 — user response time: baseline vs preliminary",
    )
    rows = {}
    for requests in WORKLOADS:
        base = results[requests]["baseline"].user_response_time
        pre = results[requests]["preliminary"].user_response_time
        gain = 1.0 - pre.mean / base.mean
        rows[requests] = {"baseline": base.mean, "preliminary": pre.mean, "gain": gain}
        table.add_row(
            [requests, str(base), str(pre), f"{gain:+.1%}", f"{FIG8_GAINS_PRELIMINARY[requests]:+.1%}"]
        )
    print_table(table)
    save_results("fig8_workload_scaling", rows)

    # Shape: preliminary wins everywhere; gains in the paper's band.
    for requests in WORKLOADS:
        assert rows[requests]["gain"] > 0.0, f"preliminary must win at {requests}"
        assert rows[requests]["gain"] < 0.15
    # Response grows with workload for both configurations.
    for key in ("baseline", "preliminary"):
        values = [rows[r][key] for r in WORKLOADS]
        assert values == sorted(values)
    # The 80-request gain is in the paper's 6.9 % ballpark.
    assert rows[80]["gain"] == pytest.approx(0.069, abs=0.035)

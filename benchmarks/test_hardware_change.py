"""Extension — hardware changes move the optimum (paper Sec. IV).

"Changes in the hardware configuration (e.g., size of GPU memory, number
of CPU cores, among others) running the Pl@ntNet application will require
a new search for the thread pool sizes since their configuration strongly
depends on the hardware. In this case, our optimization methodology should
be applied again."

We demonstrate exactly that: upgrading the engine node from 40 to 64
available cores moves the extract-pool optimum from 6 to 8–9 threads and
unlocks a much lower response time — the 40-core optimum is no longer
optimal on the new hardware. Validated with the DES at the shifted optimum.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DURATION, WARMUP, print_table, save_results
from repro.engine import (
    AnalyticEngineModel,
    EngineModelParams,
    ThreadPoolConfig,
    simulate_engine,
)
from repro.plantnet import PRELIMINARY_OPTIMUM
from repro.utils.tables import Table

EXTRACT_VALUES = tuple(range(3, 10))
CORES = (40.0, 64.0)


@pytest.fixture(scope="module")
def curves():
    out = {}
    for cores in CORES:
        model = AnalyticEngineModel(EngineModelParams(cpu_cores=cores))
        out[cores] = {
            e: model.response_time(PRELIMINARY_OPTIMUM.replace(extract=e), 80)
            for e in EXTRACT_VALUES
        }
    return out


def test_hardware_change_moves_optimum(benchmark, curves):
    # DES validation of the shifted optimum on the 64-core node.
    best64 = min(curves[64.0], key=curves[64.0].get)

    def validate():
        return simulate_engine(
            PRELIMINARY_OPTIMUM.replace(extract=best64),
            80,
            duration=DURATION,
            warmup=WARMUP,
            params=EngineModelParams(cpu_cores=64.0),
            seed=21,
        )

    des_result = benchmark.pedantic(validate, rounds=1, iterations=1)

    table = Table(
        ["extract"] + [f"{int(c)} cores (s)" for c in CORES],
        title="Extract OAT on two hardware configurations (analytic)",
    )
    for e in EXTRACT_VALUES:
        table.add_row([e] + [f"{curves[c][e]:.3f}" for c in CORES])
    print_table(table)
    best40 = min(curves[40.0], key=curves[40.0].get)
    print(
        f"\noptimum extract: {best40} @40 cores → {best64} @64 cores; "
        f"DES at the new optimum: {des_result.user_response_time.mean:.3f} s"
    )
    save_results(
        "hardware_change",
        {
            "curve_40": {str(k): v for k, v in curves[40.0].items()},
            "curve_64": {str(k): v for k, v in curves[64.0].items()},
            "best_40": best40,
            "best_64": best64,
            "des_at_best_64": des_result.user_response_time.mean,
        },
    )

    # The optimum must move up (more cores lift the CPU ceiling that made
    # extract pools of 8-9 counterproductive)...
    assert best64 > best40
    # ...and the old optimum is clearly suboptimal on the new hardware.
    assert curves[64.0][best64] < curves[64.0][best40] * 0.90
    # DES confirms the analytic optimum within 10 %.
    assert des_result.user_response_time.mean == pytest.approx(
        curves[64.0][best64], rel=0.10
    )
    # More hardware never hurts at fixed configuration.
    for e in EXTRACT_VALUES:
        assert curves[64.0][e] <= curves[40.0][e] * 1.01

"""Ablation — surrogate-model choice for the Pl@ntNet search.

The paper picks Extra-Trees ("preliminary" because e.g. Kriging or GBRT
might find other minima, Sec. IV). This ablation runs the same campaign
with every surrogate family (plus pure random search as the floor) against
the fast analytic engine twin, over several seeds, and compares the best
response time found within a fixed 25-evaluation budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, save_results
from repro.bayesopt import Optimizer
from repro.engine import AnalyticEngineModel, ThreadPoolConfig
from repro.plantnet import BASELINE, paper_search_space
from repro.utils.tables import Table

ESTIMATORS = ("ET", "RF", "GBRT", "GP")
SEEDS = (0, 1, 2, 3, 4)
BUDGET = 25
N_INITIAL = 10

_model = AnalyticEngineModel()


def _objective(point: list) -> float:
    http, download, simsearch, extract = point
    return _model.response_time(
        ThreadPoolConfig(http=http, download=download, extract=extract, simsearch=simsearch),
        80,
    )


def _campaign(estimator: str, seed: int) -> float:
    opt = Optimizer(
        paper_search_space(),
        base_estimator=estimator,
        n_initial_points=N_INITIAL,
        initial_point_generator="lhs",
        acq_func="gp_hedge",
        random_state=seed,
        acq_n_candidates=1000,
    )
    return opt.run(_objective, BUDGET).fun


def _random_campaign(seed: int) -> float:
    rng = np.random.default_rng(seed)
    space = paper_search_space()
    best = float("inf")
    for _ in range(BUDGET):
        point = space.inverse_transform(rng.random((1, len(space))))[0]
        best = min(best, _objective(point))
    return best


@pytest.fixture(scope="module")
def outcomes():
    results = {est: [_campaign(est, s) for s in SEEDS] for est in ESTIMATORS}
    results["random"] = [_random_campaign(s) for s in SEEDS]
    return results


def test_ablation_surrogates(benchmark, outcomes):
    benchmark.pedantic(lambda: _campaign("ET", 99), rounds=1, iterations=1)

    baseline_resp = _model.response_time(BASELINE, 80)
    table = Table(
        ["surrogate", "mean best resp (s)", "std", "gain vs baseline"],
        title=f"Ablation — surrogate choice ({BUDGET} evaluations, {len(SEEDS)} seeds)",
    )
    summary = {}
    for name, values in outcomes.items():
        mean = float(np.mean(values))
        summary[name] = mean
        table.add_row(
            [name, f"{mean:.3f}", f"{np.std(values):.3f}", f"{1 - mean / baseline_resp:+.1%}"]
        )
    print_table(table)
    save_results("ablation_surrogates", {"best_found": summary, "baseline": baseline_resp})

    # Every model-based search must beat the baseline configuration...
    for est in ESTIMATORS:
        assert summary[est] < baseline_resp, est
    # ...and the paper's ET choice must be competitive (within 2 % of the
    # best family) and no worse than random search.
    best_family = min(summary[e] for e in ESTIMATORS)
    assert summary["ET"] <= best_family * 1.02
    assert summary["ET"] <= summary["random"] * 1.01

"""Extension — horizontal scale-out of the engine (Sec. V-B outlook).

The paper's capacity question ends, in production, with "add engine
nodes". This bench sweeps engine replica counts against the spring-peak
workloads and reports the smallest deployment that meets the 4-second
tolerance — the refined configuration consistently needs no more nodes
than the baseline while serving the same load faster.
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import DURATION, WARMUP, print_table, save_results
from repro.plantnet import BASELINE, REFINED_OPTIMUM, ScaleOutScenario
from repro.utils.tables import Table

LOADS = (160, 240, 320)


@pytest.fixture(scope="module")
def scenario():
    return ScaleOutScenario(duration=DURATION, warmup=WARMUP, base_seed=7)


def test_scaleout_capacity(benchmark, scenario):
    benchmark.pedantic(
        lambda: scenario.run(REFINED_OPTIMUM, 160, replicas=2), rounds=1, iterations=1
    )

    table = Table(
        ["load (requests)", "config", "replicas needed", "resp (s)", "total GPU mem"],
        title="Scale-out — engine nodes needed to stay under 4 s",
    )
    rows = {}
    for load in LOADS:
        for name, config in (("baseline", BASELINE), ("refined", REFINED_OPTIMUM)):
            needed, result = scenario.replicas_needed(config, load, tolerance_s=4.0)
            rows[f"{name}@{load}"] = {
                "replicas": needed,
                "resp": result.user_response_time.mean,
                "gpu_gb": result.total_gpu_memory_gb,
            }
            table.add_row(
                [
                    load,
                    name,
                    needed,
                    f"{result.user_response_time.mean:.2f}",
                    f"{result.total_gpu_memory_gb:.0f} GB",
                ]
            )
    print_table(table)
    save_results("scaleout_capacity", rows)

    for load in LOADS:
        base = rows[f"baseline@{load}"]
        refined = rows[f"refined@{load}"]
        # the refined config never needs MORE nodes, and at equal node
        # count it is faster and uses less GPU memory per node
        assert refined["replicas"] <= base["replicas"]
        if refined["replicas"] == base["replicas"]:
            assert refined["resp"] < base["resp"]
            assert refined["gpu_gb"] < base["gpu_gb"]
    # capacity scales: heavier loads need at least as many replicas
    needed = [rows[f"refined@{load}"]["replicas"] for load in LOADS]
    assert needed == sorted(needed)

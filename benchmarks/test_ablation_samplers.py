"""Ablation — initial-design sampler choice (LHS vs alternatives).

The paper initializes the surrogate from a Latin Hypercube Sample. This
ablation measures both (a) the quality of the initial design itself (best
point in the first N evaluations) and (b) the final outcome after the
model-guided phase, for LHS / Sobol / Halton / random.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, save_results
from repro.bayesopt import Optimizer
from repro.engine import AnalyticEngineModel, ThreadPoolConfig
from repro.plantnet import paper_search_space
from repro.utils.tables import Table

GENERATORS = ("lhs", "sobol", "halton", "random")
SEEDS = (0, 1, 2, 3, 4, 5)
N_INITIAL = 12
BUDGET = 24

_model = AnalyticEngineModel()


def _objective(point: list) -> float:
    http, download, simsearch, extract = point
    return _model.response_time(
        ThreadPoolConfig(http=http, download=download, extract=extract, simsearch=simsearch),
        80,
    )


def _campaign(generator: str, seed: int) -> tuple[float, float]:
    opt = Optimizer(
        paper_search_space(),
        base_estimator="ET",
        n_initial_points=N_INITIAL,
        initial_point_generator=generator,
        acq_func="gp_hedge",
        random_state=seed,
        acq_n_candidates=1000,
    )
    result = opt.run(_objective, BUDGET)
    return result.best_after(N_INITIAL), result.fun


@pytest.fixture(scope="module")
def outcomes():
    return {
        gen: [_campaign(gen, seed) for seed in SEEDS] for gen in GENERATORS
    }


def test_ablation_samplers(benchmark, outcomes):
    benchmark.pedantic(lambda: _campaign("lhs", 99), rounds=1, iterations=1)

    table = Table(
        ["generator", "best after initial design", "final best", "std(final)"],
        title=f"Ablation — initial point generator (n_initial={N_INITIAL}, budget={BUDGET})",
    )
    rows = {}
    for gen, values in outcomes.items():
        initial = float(np.mean([v[0] for v in values]))
        final = float(np.mean([v[1] for v in values]))
        rows[gen] = {"initial": initial, "final": final}
        table.add_row(
            [gen, f"{initial:.3f}", f"{final:.3f}", f"{np.std([v[1] for v in values]):.3f}"]
        )
    print_table(table)
    save_results("ablation_samplers", rows)

    # All generators converge to the same basin (flat near-optimum): finals
    # within 3 % of each other.
    finals = [rows[g]["final"] for g in GENERATORS]
    assert max(finals) / min(finals) < 1.03
    # Space-filling designs (LHS/Sobol/Halton) give an initial design at
    # least as good as plain random on average.
    structured = min(rows[g]["initial"] for g in ("lhs", "sobol", "halton"))
    assert structured <= rows["random"]["initial"] * 1.01

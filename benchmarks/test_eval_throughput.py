"""Evaluation-path throughput benchmark: fast lane + warm reuse + cache.

Two measurements, both against a faithful emulation of the pre-optimization
evaluation path:

- **DES microbenchmark** — pure simulated-delay churn. The baseline arm
  yields ``LegacyTimeout`` events (the old protocol: a full
  ``Event.__init__`` with a callbacks list, a separate ``env.schedule()``
  call, and a ``step()``-per-event drain loop). The fast arm yields raw
  numbers, which ride the pooled :class:`~repro.simcore.events.SlimDelay`
  fast lane through the localized run loop. Both arms must end at the
  same simulated clock — the lanes are byte-identical by construction.

- **End-to-end campaign** — a duplicate-heavy trial sequence over the
  Pl@ntNet scenario. The baseline arm disables the fast lane, warm
  deployment reuse, and the evaluation cache (the pre-PR path: every
  trial re-places the deployment and re-simulates). The fast arm enables
  all three, so repeated configurations hit the
  :class:`~repro.search.evalcache.EvalCache` and unique ones simulate on
  the fast lane against a warm deployment. Trial results must match the
  baseline arm exactly, trial by trial.

Results land in ``benchmarks/results/BENCH_eval.json``. Scale: set
``REPRO_BENCH_SMOKE=1`` for the CI-sized smoke run.
"""

from __future__ import annotations

import math
import os
import time
from typing import Any, Optional

from benchmarks.conftest import save_results
from repro.plantnet.scenario import PlantNetScenario
from repro.search.algos import SearchAlgorithm
from repro.search.evalcache import EvalCache
from repro.search.runner import TrialRunner
from repro.simcore.core import EmptySchedule, Environment
from repro.simcore.events import NORMAL, Event

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
SEED = 2021

# -- DES microbenchmark --------------------------------------------------------------

N_PROCS = 200
N_WAITS = 250 if SMOKE else 1000
DES_REPEATS = 3 if SMOKE else 5


class LegacyTimeout(Event):
    """The pre-optimization timeout protocol, kept for the baseline arm.

    Finiteness validation, a full ``Event.__init__`` (callbacks list,
    pending value), then a separate ``env.schedule()`` call (which
    validates again) — exactly what every simulated delay used to cost
    before raw-number yields and the ``SlimDelay`` pool.
    """

    __slots__ = ("delay",)

    def __init__(self, env: Environment, delay: float) -> None:
        if not math.isfinite(delay) or delay < 0:
            raise ValueError(f"timeout delay must be finite and >= 0, got {delay}")
        Event.__init__(self, env)
        self.delay = delay
        self._ok = True
        self._value = None
        env.schedule(self, NORMAL, delay)


def _delay_plan() -> list[tuple[float, ...]]:
    """Per-process delay sequences, precomputed so neither arm pays for
    the arithmetic inside the measured loop."""
    return [
        tuple(0.001 * ((i + k) % 7 + 1) for k in range(N_WAITS))
        for i in range(N_PROCS)
    ]


def _des_workload(env: Environment, plan: list[tuple[float, ...]], legacy: bool):
    if legacy:
        def proc(delays: tuple[float, ...]):
            for delay in delays:
                yield LegacyTimeout(env, delay)
    else:
        def proc(delays: tuple[float, ...]):
            for delay in delays:
                yield delay

    for i, delays in enumerate(plan):
        env.process(proc(delays), name=f"p{i}")


def _des_arm(legacy: bool) -> dict[str, float]:
    best = float("inf")
    final_now = 0.0
    plan = _delay_plan()
    for _ in range(DES_REPEATS):
        env = Environment()
        _des_workload(env, plan, legacy)
        t0 = time.perf_counter()
        if legacy:
            # The old drain loop: one step() call per event, with the
            # per-event wall-deadline check the old run() always made.
            wall_deadline = None
            try:
                while True:
                    env.step()
                    if wall_deadline is not None and time.perf_counter() > wall_deadline:
                        raise RuntimeError("unreachable")
            except EmptySchedule:
                pass
        else:
            env.run()
        best = min(best, time.perf_counter() - t0)
        final_now = env.now
    events = N_PROCS * (N_WAITS + 2)  # +init +completion per process
    return {
        "wall_s": best,
        "events_per_sec": events / best,
        "final_now": final_now,
    }


# -- end-to-end campaign --------------------------------------------------------------

UNIQUE_CONFIGS: list[dict[str, int]] = [
    {"http": 20, "download": 20, "simsearch": 20, "extract": 3},
    {"http": 40, "download": 30, "simsearch": 40, "extract": 5},
    {"http": 60, "download": 40, "simsearch": 30, "extract": 7},
    {"http": 30, "download": 50, "simsearch": 50, "extract": 4},
]
REPLAYS = 4  # every config proposed this many times → 3/4 of trials are duplicates
SIM_REQUESTS = 40 if SMOKE else 80
DURATION = 60.0 if SMOKE else 180.0
WARMUP = 10.0


class ReplaySearch(SearchAlgorithm):
    """Proposes a fixed, duplicate-heavy configuration sequence."""

    def __init__(self, space: Any, sequence: list[dict[str, Any]]) -> None:
        self._sequence = list(sequence)
        self._i = 0

    def suggest(self, trial_id: str) -> Optional[dict[str, Any]]:
        if self._i >= len(self._sequence):
            return None
        config = dict(self._sequence[self._i])
        self._i += 1
        return config

    def on_trial_complete(
        self, trial_id: str, config: dict[str, Any], value: float
    ) -> None:
        pass


def _campaign_sequence() -> list[dict[str, int]]:
    # Interleaved (a b c d a b c d ...) so duplicates are never adjacent.
    return [config for _ in range(REPLAYS) for config in UNIQUE_CONFIGS]


def _campaign_arm(*, fast: bool) -> tuple[dict[str, Any], list[dict[str, float]]]:
    scenario = PlantNetScenario(
        duration=DURATION,
        warmup=WARMUP,
        repetitions=1,
        base_seed=SEED,
        use_testbed=True,
        warm_reuse=fast,
        fast_lane=fast,
    )
    cache = None
    if fast:
        cache = EvalCache(
            fingerprint={
                "scenario": scenario.fingerprint(),
                "simultaneous_requests": SIM_REQUESTS,
            }
        )

    def evaluate(config: dict[str, Any]) -> dict[str, float]:
        return scenario.evaluate(dict(config), SIM_REQUESTS)

    sequence = _campaign_sequence()
    runner = TrialRunner(
        evaluate,
        ReplaySearch(None, sequence),
        metric="user_resp_time",
        mode="min",
        num_samples=len(sequence),
        executor="sync",
        name="bench_eval_fast" if fast else "bench_eval_base",
        eval_cache=cache,
    )
    t0 = time.perf_counter()
    try:
        analysis = runner.run()
    finally:
        scenario.close()
    wall = time.perf_counter() - t0
    results = [dict(t.result) for t in analysis.trials]
    arm = {
        "trials": len(analysis.trials),
        "wall_s": wall,
        "trials_per_sec": len(analysis.trials) / wall,
        "cache": cache.stats() if cache is not None else None,
    }
    return arm, results


# -- the benchmark --------------------------------------------------------------------


def test_eval_throughput():
    # DES microbenchmark: raw-number fast lane vs the legacy event protocol.
    legacy = _des_arm(legacy=True)
    fast = _des_arm(legacy=False)
    assert fast["final_now"] == legacy["final_now"], "lanes diverged in simulated time"
    des_speedup = legacy["wall_s"] / fast["wall_s"]

    # End-to-end campaign: all optimizations on vs the pre-PR path.
    base_arm, base_results = _campaign_arm(fast=False)
    fast_arm, fast_results = _campaign_arm(fast=True)
    campaign_speedup = base_arm["wall_s"] / fast_arm["wall_s"]

    # Byte-identity: same seeds → same objectives, trial by trial, with the
    # fast lane, warm reuse, and the cache all enabled.
    assert len(base_results) == len(fast_results) == len(_campaign_sequence())
    for i, (b, f) in enumerate(zip(base_results, fast_results)):
        assert b == f, f"trial {i} diverged: {b} != {f}"

    payload = {
        "scale": "smoke" if SMOKE else "full",
        "seed": SEED,
        "des": {
            "n_procs": N_PROCS,
            "n_waits": N_WAITS,
            "legacy": legacy,
            "fast": fast,
            "speedup": des_speedup,
        },
        "campaign": {
            "unique_configs": len(UNIQUE_CONFIGS),
            "replays": REPLAYS,
            "simultaneous_requests": SIM_REQUESTS,
            "duration_s": DURATION,
            "baseline": base_arm,
            "fast": fast_arm,
            "speedup": campaign_speedup,
            "byte_identical": True,
        },
    }
    save_results("BENCH_eval", payload)

    print()
    print(f"evaluation-path throughput ({payload['scale']})")
    print(
        f"  DES micro: legacy {legacy['events_per_sec']:,.0f} ev/s, "
        f"fast {fast['events_per_sec']:,.0f} ev/s → {des_speedup:.1f}x"
    )
    print(
        f"  campaign ({len(base_results)} trials, "
        f"{len(UNIQUE_CONFIGS)} unique): baseline {base_arm['wall_s']:.2f}s, "
        f"fast {fast_arm['wall_s']:.2f}s → {campaign_speedup:.1f}x"
    )
    print(f"  cache: {fast_arm['cache']}")

    assert des_speedup >= 2.0, f"expected >=2x DES speedup, got {des_speedup:.2f}x"
    assert campaign_speedup >= 3.0, (
        f"expected >=3x campaign speedup, got {campaign_speedup:.2f}x"
    )
    # The duplicate replays must all have come from the cache.
    stats = fast_arm["cache"]
    assert stats["hits"] == len(_campaign_sequence()) - len(UNIQUE_CONFIGS)
    assert stats["stores"] == len(UNIQUE_CONFIGS)

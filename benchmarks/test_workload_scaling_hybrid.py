"""Hybrid fluid/DES engine benchmark: internet-scale open-loop workloads.

One day of Pl@ntNet traffic at a 1M-user base (~1 photo per user per day,
diurnal peak-to-trough ratio 3) is simulated twice:

- **pure DES** — the :class:`~repro.engine.engine.IdentificationEngine`
  driven by the scheduled Poisson source, every one of the ~1M requests
  event-simulated through the nine-step pipeline;
- **hybrid** — :class:`~repro.engine.hybrid.HybridEngine` fast-forwarding
  fluid epochs through the open-loop analytic model and dropping into
  short DES calibration windows at regime changes and on a fixed cadence.

The pure-DES run doubles as ground truth: hybrid throughput / mean / p95
must agree within the configured error bound (default 5%), and the
hybrid's own window-level error accounting (``within_bound``) must agree.
A repeat hybrid run with the same seed must reproduce identical numbers.

Results land in ``benchmarks/results/BENCH_hybrid.json``. Scale: set
``REPRO_BENCH_SMOKE=1`` for the CI-sized smoke run (a compressed 2-hour
"day" with the same rate curve — per-unit costs stay comparable, which is
what the perf gate diffs).
"""

from __future__ import annotations

import os
import time
from typing import Any

from benchmarks.conftest import save_results
from repro.engine import (
    BASELINE_CONFIG,
    HybridKnobs,
    IdentificationEngine,
    WorkloadSpec,
    simulate_hybrid,
)
from repro.plantnet.growth import UserGrowthModel

SMOKE = os.environ.get("REPRO_BENCH_SMOKE", "") == "1"
SEED = 2021

USERS = 1_000_000
REQUESTS_PER_USER_PER_DAY = 1.0
DIURNAL_RATIO = 3.0
#: smoke compresses the diurnal day so the pure-DES arm stays CI-sized;
#: the rate curve (and hence per-request / per-window cost) is unchanged.
DAY_S = 7200.0 if SMOKE else 86400.0
ERROR_BOUND = 0.05
#: windows amortize poorly over a short smoke day (fewer fluid epochs per
#: calibration window), so the smoke floor is lower than the headline 50x.
MIN_SPEEDUP = 5.0 if SMOKE else 50.0

KNOBS = HybridKnobs(error_bound=ERROR_BOUND)


def _schedule():
    return UserGrowthModel().arrival_schedule(
        users=USERS,
        requests_per_user_per_day=REQUESTS_PER_USER_PER_DAY,
        diurnal_ratio=DIURNAL_RATIO,
        period=DAY_S,
    )


def _des_arm(schedule) -> dict[str, Any]:
    workload = WorkloadSpec(arrival_schedule=schedule, duration=DAY_S, warmup=0.0)
    engine = IdentificationEngine(BASELINE_CONFIG, workload, seed=SEED)
    t0 = time.perf_counter()
    result = engine.run()
    wall = time.perf_counter() - t0
    return {
        "wall_s": wall,
        "completed": result.completed_requests,
        "throughput": result.throughput,
        "response_mean_s": result.user_response_time.mean,
        "response_p95_s": result.response_percentiles["p95"],
    }


def _hybrid_arm(schedule) -> tuple[dict[str, Any], Any]:
    t0 = time.perf_counter()
    result = simulate_hybrid(
        BASELINE_CONFIG, schedule, duration=DAY_S, knobs=KNOBS, seed=SEED
    )
    wall = time.perf_counter() - t0
    arm = {
        "wall_s": wall,
        "completed": result.completed_requests,
        "throughput": result.throughput,
        "response_mean_s": result.user_response_time.mean,
        "response_p95_s": result.response_percentiles["p95"],
        "epochs": result.fluid_epochs + result.des_epochs,
        "fluid_epochs": result.fluid_epochs,
        "des_epochs": result.des_epochs,
        "des_time_fraction": result.des_time_fraction,
        "max_window_error": result.max_window_error,
        "error_throughput_bias": result.error_throughput_bias,
        "error_p95_bias": result.error_p95_bias,
        "within_bound": result.within_bound,
        "engine_rebuilds": result.engine_rebuilds,
    }
    return arm, result


def _rel_err(measured: float, truth: float) -> float:
    return abs(measured - truth) / truth


def test_hybrid_workload_scaling():
    schedule = _schedule()

    des = _des_arm(schedule)
    hybrid, hybrid_result = _hybrid_arm(schedule)
    speedup = des["wall_s"] / hybrid["wall_s"]

    # Reproducibility: the hybrid path is deterministic under a fixed seed.
    replay, _ = _hybrid_arm(schedule)
    for key in ("completed", "throughput", "response_mean_s", "response_p95_s"):
        assert replay[key] == hybrid[key], f"hybrid replay diverged on {key}"

    errors = {
        "throughput": _rel_err(hybrid["throughput"], des["throughput"]),
        "response_mean": _rel_err(des["response_mean_s"], hybrid["response_mean_s"]),
        "response_p95": _rel_err(des["response_p95_s"], hybrid["response_p95_s"]),
    }

    payload = {
        "scale": "smoke" if SMOKE else "full",
        "seed": SEED,
        "scenario": {
            "users": USERS,
            "requests_per_user_per_day": REQUESTS_PER_USER_PER_DAY,
            "diurnal_ratio": DIURNAL_RATIO,
            "day_s": DAY_S,
            "mean_rate": schedule.mean_rate(DAY_S),
            "peak_rate": schedule.peak_rate(DAY_S),
        },
        "des": des,
        "hybrid": hybrid,
        "speedup": speedup,
        "calibration": {
            "error_bound": ERROR_BOUND,
            "errors_vs_des": errors,
            "within_bound": hybrid["within_bound"],
        },
    }
    save_results("BENCH_hybrid", payload)

    print()
    print(f"hybrid fluid/DES scaling ({payload['scale']})")
    print(
        f"  scenario: {USERS:,} users, mean {schedule.mean_rate(DAY_S):.2f} req/s, "
        f"peak {schedule.peak_rate(DAY_S):.2f} req/s over {DAY_S:,.0f}s"
    )
    print(
        f"  pure DES: {des['wall_s']:.2f}s wall for {des['completed']:,} requests "
        f"({des['throughput']:.2f} req/s, p95 {des['response_p95_s']:.3f}s)"
    )
    print(
        f"  hybrid:   {hybrid['wall_s']:.2f}s wall, {hybrid['des_epochs']} DES windows / "
        f"{hybrid['epochs']} epochs, {hybrid['des_time_fraction']:.1%} time event-simulated"
    )
    print(
        f"  speedup {speedup:.1f}x; errors vs DES: "
        + ", ".join(f"{k} {v:.2%}" for k, v in errors.items())
    )

    assert speedup >= MIN_SPEEDUP, (
        f"expected >={MIN_SPEEDUP:.0f}x hybrid speedup, got {speedup:.1f}x"
    )
    for metric, err in errors.items():
        assert err <= ERROR_BOUND, (
            f"hybrid {metric} off by {err:.2%} vs DES (bound {ERROR_BOUND:.0%})"
        )
    # The engine's own error accounting must agree with the external check.
    assert hybrid_result.within_bound, (
        f"hybrid self-reported bias out of bound: "
        f"throughput {hybrid_result.error_throughput_bias:.2%}, "
        f"p95 {hybrid_result.error_p95_bias:.2%}"
    )

"""Ablation — decomposed vs joint optimization (paper Fig. 4 / Sec. III-A).

Phase I lets the user either split the problem into per-infrastructure
sub-problems ("reduces the search space complexity and hence the computing
time") or keep one joint problem. We compare both strategies on the Eq. 2
space with the same total evaluation budget.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, save_results
from repro.bayesopt import Optimizer
from repro.engine import AnalyticEngineModel, ThreadPoolConfig
from repro.optimizer import DecomposedOptimization
from repro.plantnet import paper_problem, paper_search_space
from repro.utils.tables import Table

SEEDS = (0, 1, 2, 3, 4)
ROUNDS = 2
BUDGET_PER_BLOCK = 8
TOTAL_BUDGET = ROUNDS * 2 * BUDGET_PER_BLOCK  # 2 groups

_model = AnalyticEngineModel()


def _metrics(config: dict) -> dict:
    return {
        "user_resp_time": _model.response_time(
            ThreadPoolConfig(
                http=config["http"],
                download=config["download"],
                extract=config["extract"],
                simsearch=config["simsearch"],
            ),
            80,
        )
    }


def _decomposed(seed: int) -> float:
    result = DecomposedOptimization(
        paper_problem(),
        _metrics,
        groups={"admission": ["http", "download"], "compute": ["extract", "simsearch"]},
        seed=seed,
    ).run(rounds=ROUNDS, budget_per_block=BUDGET_PER_BLOCK)
    assert result.n_evaluations == TOTAL_BUDGET
    return result.best_value


def _joint(seed: int) -> float:
    space = paper_search_space()
    opt = Optimizer(
        space,
        base_estimator="ET",
        n_initial_points=TOTAL_BUDGET // 2,
        initial_point_generator="lhs",
        acq_func="gp_hedge",
        random_state=seed,
        acq_n_candidates=1000,
    )

    def objective(point: list) -> float:
        return _metrics(space.to_dict(point))["user_resp_time"]

    return opt.run(objective, TOTAL_BUDGET).fun


@pytest.fixture(scope="module")
def outcomes():
    return {
        "decomposed (2 blocks)": [_decomposed(s) for s in SEEDS],
        "joint (4-D)": [_joint(s) for s in SEEDS],
    }


def test_ablation_decomposition(benchmark, outcomes):
    benchmark.pedantic(lambda: _decomposed(99), rounds=1, iterations=1)

    table = Table(
        ["strategy", "mean best resp (s)", "std"],
        title=f"Ablation — decomposed vs joint optimization ({TOTAL_BUDGET} evaluations)",
    )
    rows = {}
    for name, values in outcomes.items():
        rows[name] = float(np.mean(values))
        table.add_row([name, f"{rows[name]:.3f}", f"{np.std(values):.3f}"])
    print_table(table)
    save_results("ablation_decomposition", rows)

    # Both strategies reach the good basin on this 4-D problem; neither may
    # lose by more than ~2 % — the decomposition's value is complexity
    # reduction on *large* spaces, not quality on small ones.
    values = list(rows.values())
    assert max(values) / min(values) < 1.02
    baseline = _metrics({"http": 40, "download": 40, "extract": 7, "simsearch": 40})
    for value in values:
        assert value < baseline["user_resp_time"]

"""Table IV — baseline vs preliminary optimum vs refined optimum.

The paper's final comparison at 80 simultaneous requests:

=============  ========  ============  =========
Thread pool    baseline  preliminary   refined
=============  ========  ============  =========
HTTP           40        54            54
Download       40        54            54
Extract        7         7             6
Simsearch      40        53            53
Response (s)   2.657     2.484         2.476
=============  ========  ============  =========

plus the Sec. IV-C resource claim: the refined optimum uses ~30 % less GPU
memory (7 GB vs 10 GB).
"""

from __future__ import annotations

import pytest

from benchmarks.conftest import print_table, save_results
from repro.plantnet import BASELINE, PRELIMINARY_OPTIMUM, REFINED_OPTIMUM
from repro.plantnet.paper import GPU_MEMORY_CLAIM, TABLE_IV
from repro.utils.tables import Table

CONFIGS = {
    "baseline": BASELINE,
    "preliminary": PRELIMINARY_OPTIMUM,
    "refined": REFINED_OPTIMUM,
}


@pytest.fixture(scope="module")
def results(scenario):
    return {name: scenario.run(config, 80) for name, config in CONFIGS.items()}


def test_table4_three_configs(benchmark, results, scenario):
    benchmark.pedantic(
        lambda: scenario.run(REFINED_OPTIMUM, 80, repetitions=1), rounds=1, iterations=1
    )

    table = Table(
        ["", "baseline", "preliminary", "refined"],
        title="Table IV — the three Pl@ntNet configurations (80 requests)",
    )
    for pool in ("http", "download", "extract", "simsearch"):
        table.add_row([pool] + [getattr(CONFIGS[n], pool) for n in CONFIGS])
    table.add_row(
        ["measured resp (s)"] + [str(results[n].user_response_time) for n in CONFIGS]
    )
    table.add_row(
        ["paper resp (s)"]
        + [f"{TABLE_IV[n]['user_resp_time']} (±{TABLE_IV[n]['std']})" for n in CONFIGS]
    )
    table.add_row(
        ["GPU memory (GB)"] + [f"{results[n].aggregate.gpu_memory_gb:.1f}" for n in CONFIGS]
    )
    print_table(table)
    measured = {n: results[n].user_response_time.mean for n in CONFIGS}
    save_results(
        "table4_three_configs",
        {
            "measured": measured,
            "paper": {n: TABLE_IV[n]["user_resp_time"] for n in CONFIGS},
            "gpu_memory_gb": {n: results[n].aggregate.gpu_memory_gb for n in CONFIGS},
        },
    )

    # Shape: strict ordering of the three configurations.
    assert measured["preliminary"] < measured["baseline"]
    assert measured["refined"] <= measured["preliminary"] * 1.005
    # Absolute values near the paper's (within 8 %).
    for name in CONFIGS:
        assert measured[name] == pytest.approx(TABLE_IV[name]["user_resp_time"], rel=0.08), name
    # GPU memory claim: ~30 % reduction for the refined optimum.
    reduction = 1 - results["refined"].aggregate.gpu_memory_gb / results["baseline"].aggregate.gpu_memory_gb
    assert reduction == pytest.approx(GPU_MEMORY_CLAIM["reduction"], abs=0.05)
    assert results["baseline"].aggregate.gpu_memory_gb == pytest.approx(
        GPU_MEMORY_CLAIM["baseline_gb"], rel=0.05
    )
    assert results["refined"].aggregate.gpu_memory_gb == pytest.approx(
        GPU_MEMORY_CLAIM["refined_gb"], rel=0.05
    )

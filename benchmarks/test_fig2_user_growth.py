"""Fig. 2 — exponential growth of new users with spring peaks.

The registration data itself is proprietary; the synthetic generator
reproduces the figure's qualitative content — year-over-year exponential
growth with May–June peaks — and feeds the capacity-planning example.
"""

from __future__ import annotations

import numpy as np

from benchmarks.conftest import print_table, save_results
from repro.plantnet import UserGrowthModel
from repro.utils.tables import Table

YEARS = 4


def test_fig2_user_growth(benchmark):
    model = UserGrowthModel()

    def generate():
        return model.generate(int(YEARS * 365.25), seed=2021)

    series = benchmark.pedantic(generate, rounds=1, iterations=1)

    days = series.times
    values = series.values
    table = Table(
        ["year", "peak day (day-of-year)", "peak rate", "trough rate", "peak/trough"],
        title="Fig. 2 — synthetic Pl@ntNet user growth (spring peaks)",
    )
    peaks = []
    rows = []
    for year in range(YEARS):
        mask = (days >= year * 365.25) & (days < (year + 1) * 365.25)
        year_values = values[mask]
        year_days = days[mask]
        peak_idx = int(np.argmax(year_values))
        peak_day = int(year_days[peak_idx] - year * 365.25)
        peak = float(year_values.max())
        trough = float(year_values.min())
        peaks.append(peak)
        table.add_row([year + 1, peak_day, f"{peak:.0f}", f"{trough:.0f}", f"{peak / trough:.2f}"])
        rows.append({"year": year + 1, "peak_day": peak_day, "peak": peak, "trough": trough})
    print_table(table)
    save_results("fig2_user_growth", {"years": rows})

    # Shape: peaks land in spring (April–June) and grow every year.
    for row in rows:
        assert 90 <= row["peak_day"] <= 190, "peak must fall in spring"
    assert all(b > a for a, b in zip(peaks, peaks[1:])), "year-over-year growth"
    # peaks are pronounced (the paper's 'exponential growth every spring')
    assert all(row["peak"] / row["trough"] > 2.0 for row in rows)

"""Shared infrastructure for the benchmark harness.

Every benchmark regenerates one table or figure of the paper and prints a
*paper vs measured* report (run with ``pytest benchmarks/ --benchmark-only
-s`` to see them). Results are also dumped as JSON under
``benchmarks/results/`` so EXPERIMENTS.md can be refreshed from them.

Scale: by default experiments run at a reduced duration/repetition count
(the shapes are stable well below the paper's 7 × 23 min protocol). Set
``REPRO_PAPER_SCALE=full`` to use the paper's exact protocol.
"""

from __future__ import annotations

import os
from pathlib import Path

import pytest

from repro.plantnet import PlantNetScenario
from repro.utils.serialization import dump_json

RESULTS_DIR = Path(__file__).parent / "results"

FULL_SCALE = os.environ.get("REPRO_PAPER_SCALE", "").lower() == "full"

#: per-evaluation measurement protocol.
DURATION = 1380.0 if FULL_SCALE else 345.0
WARMUP = 60.0
REPETITIONS = 7 if FULL_SCALE else 3
SWEEP_REPETITIONS = 7 if FULL_SCALE else 1


@pytest.fixture(scope="session")
def scenario() -> PlantNetScenario:
    """The shared Grid'5000 Pl@ntNet scenario at benchmark scale."""
    return PlantNetScenario(
        duration=DURATION,
        warmup=WARMUP,
        repetitions=REPETITIONS,
        base_seed=2021,
    )


@pytest.fixture(scope="session")
def sweep_scenario() -> PlantNetScenario:
    """Lighter scenario for many-point sweeps (OAT, workload curves)."""
    return PlantNetScenario(
        duration=DURATION,
        warmup=WARMUP,
        repetitions=SWEEP_REPETITIONS,
        base_seed=2021,
    )


def save_results(name: str, payload: dict) -> None:
    """Persist a benchmark's rows for EXPERIMENTS.md."""
    dump_json(payload, RESULTS_DIR / f"{name}.json")


def print_table(table) -> None:
    print()
    print(table.render())

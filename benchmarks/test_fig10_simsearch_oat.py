"""Fig. 10 — impact of similarity-search thread-pool variability (OAT).

The paper varies simsearch ±3 around 53. Its measurements show a shallow
~4 % dip at 55 threads — yet Table IV keeps simsearch at 53 in the refined
optimum, implying the dip sits within run-to-run variance. Our model
renders this region as a plateau: we assert the *flatness* (all variations
within a few percent) and the busy-time levels, and report the measured
curve side by side with the paper's reading.
"""

from __future__ import annotations

import numpy as np
import pytest

from benchmarks.conftest import print_table, save_results
from repro.plantnet import PRELIMINARY_OPTIMUM
from repro.plantnet.paper import FIG10_SIMSEARCH_SWEEP
from repro.sensitivity import OATAnalysis, ParameterSweep
from repro.utils.tables import Table

SIMSEARCH_VALUES = (50, 51, 52, 53, 54, 55, 56)


@pytest.fixture(scope="module")
def oat_result(sweep_scenario):
    analysis = OATAnalysis(
        lambda cfg: sweep_scenario.evaluate(cfg, 80, seed=12),
        PRELIMINARY_OPTIMUM.to_dict(),
    )
    return analysis.run([ParameterSweep("simsearch", SIMSEARCH_VALUES)])


def test_fig10_simsearch_oat(benchmark, oat_result, sweep_scenario):
    benchmark.pedantic(
        lambda: sweep_scenario.evaluate(
            PRELIMINARY_OPTIMUM.replace(simsearch=55).to_dict(), 80, seed=13
        ),
        rounds=1,
        iterations=1,
    )

    sweep = dict(oat_result.sweeps["simsearch"])
    table = Table(
        ["simsearch", "resp (s)", "simsearch task", "wait-simsearch", "simsearch busy", "extract busy"],
        title="Fig. 10 — simsearch pool OAT around the preliminary optimum",
    )
    rows = {}
    for s in SIMSEARCH_VALUES:
        m = sweep[s]
        rows[s] = m
        table.add_row(
            [
                s,
                f"{m['user_resp_time']:.3f}",
                f"{m['task_simsearch']:.3f}",
                f"{m['task_wait-simsearch']:.4f}",
                f"{m['busy_simsearch']:.0%}",
                f"{m['busy_extract']:.0%}",
            ]
        )
    print_table(table)
    print(
        "\npaper reading: shallow minimum at 55 (−4 %), adopted refined value "
        f"stays at {FIG10_SIMSEARCH_SWEEP['adopted_in_refined']} (Table IV) — "
        "consistent with a variance-level plateau, which is what we measure."
    )
    save_results("fig10_simsearch_oat", {str(k): v for k, v in rows.items()})

    resp = np.array([rows[s]["user_resp_time"] for s in SIMSEARCH_VALUES])
    # Plateau: the whole ±3 sweep moves the response by only a few percent.
    assert (resp.max() - resp.min()) / resp.min() < 0.05
    # The adopted refined value (53) is statistically as good as the best.
    assert rows[53]["user_resp_time"] <= resp.min() * 1.03
    # simsearch pool comfortably below saturation in this range (paper: the
    # pool is the non-bottleneck here)...
    for s in (53, 54, 55):
        assert rows[s]["busy_simsearch"] < 0.85
    # ...while the extract pool stays the busy one.
    for s in SIMSEARCH_VALUES:
        assert rows[s]["busy_extract"] > 0.9
    # wait-simsearch shrinks as the pool grows.
    waits = [rows[s]["task_wait-simsearch"] for s in SIMSEARCH_VALUES]
    assert waits[0] >= waits[-1]

"""Tests for the fault-tolerance layer: injection, retry/timeout, resume."""

import json
import time

import pytest

from repro.bayesopt import Integer, Space
from repro.cli import main
from repro.errors import FaultError, ReservationError, TrialError, ValidationError, WallClockTimeout
from repro.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultSpec,
    NodeCrashFault,
    TransientFault,
    current_attempt,
)
from repro.optimizer import OptimizationManager, OptimizerConf
from repro.search import RandomSearch, TrialRunner, TrialStatus
from repro.search.schedulers import TrialDecision, TrialScheduler
from repro.search.trial import Trial
from repro.simcore import Environment
from repro.testbed import grid5000


def _space():
    return Space([Integer(0, 30, name="a"), Integer(0, 10, name="b")])


def _ok_objective(config):
    return {"objective": float((config["a"] - 21) ** 2 + (config["b"] - 4) ** 2)}


def _failing_objective(config):
    """Module-level (picklable) trainable that always blows up."""
    raise RuntimeError(f"boom at a={config['a']}")


def _flaky_by_attempt(config):
    """Picklable trainable that only succeeds from the second retry on."""
    if current_attempt() < 2:
        raise RuntimeError(f"flaky failure on attempt {current_attempt()}")
    return {"objective": float(config["a"])}


def _hang_then_succeed(config):
    if current_attempt() == 0:
        time.sleep(10.0)
    return {"objective": 1.0}


class TestFaultSpec:
    def test_rates_validated(self):
        with pytest.raises(ValidationError):
            FaultSpec(transient=1.5)
        with pytest.raises(ValidationError):
            FaultSpec(transient=0.6, node_crash=0.6)
        with pytest.raises(ValidationError):
            FaultSpec(degradation_factor=0.5)

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ValidationError):
            FaultSpec.from_dict({"transient": 0.1, "typo": 1})

    def test_total_rate(self):
        spec = FaultSpec(transient=0.1, straggler=0.2)
        assert spec.total_rate == pytest.approx(0.3)


class TestFaultInjector:
    def test_decisions_are_deterministic(self):
        spec = FaultSpec(transient=0.3, node_crash=0.2, straggler=0.2, seed=7)
        a = FaultInjector(spec)
        b = FaultInjector(spec)
        config = {"x": 3, "y": "edge"}
        for attempt in range(20):
            assert a.decide(config, attempt) == b.decide(config, attempt)

    def test_attempts_draw_independent_streams(self):
        injector = FaultInjector(FaultSpec(transient=0.5, seed=1))
        config = {"x": 1}
        decisions = {injector.decide(config, attempt) for attempt in range(30)}
        # A retried attempt must be able to dodge the fault of the previous one.
        assert decisions == {None, "transient"}

    def test_zero_rates_never_fire(self):
        injector = FaultInjector(FaultSpec(seed=3))
        assert all(injector.decide({"x": i}) is None for i in range(50))

    def test_wrap_raises_and_tallies(self):
        injector = FaultInjector(FaultSpec(transient=1.0, seed=0))
        wrapped = injector.wrap(_ok_objective)
        with pytest.raises(TransientFault):
            wrapped({"a": 21, "b": 4})
        assert injector.injected["transient"] == 1

    def test_wrap_node_crash(self):
        injector = FaultInjector(FaultSpec(node_crash=1.0, seed=0))
        wrapped = injector.wrap(_ok_objective)
        with pytest.raises(NodeCrashFault):
            wrapped({"a": 1, "b": 1})

    def test_wrap_degradation_inflates_numeric_metrics(self):
        injector = FaultInjector(
            FaultSpec(link_degradation=1.0, degradation_factor=2.0, seed=0)
        )
        wrapped = injector.wrap(lambda config: {"latency": 3.0, "deployment": "edge"})
        metrics = wrapped({"a": 1})
        assert metrics["latency"] == pytest.approx(6.0)
        assert metrics["deployment"] == "edge"

    def test_crash_node_marks_victim_failed(self):
        testbed = grid5000({"gros": 4})
        injector = FaultInjector(FaultSpec(seed=11))
        victim = injector.crash_node(testbed, "gros")
        assert victim.failed
        assert victim not in testbed.cluster("gros").free_nodes()
        with pytest.raises(ReservationError):
            victim.reserve("job-1")
        victim.repair()
        assert victim in testbed.cluster("gros").free_nodes()

    def test_crash_node_exhausts(self):
        testbed = grid5000({"gros": 2})
        injector = FaultInjector(FaultSpec(seed=2))
        injector.crash_node(testbed, "gros")
        injector.crash_node(testbed, "gros")
        with pytest.raises(FaultError):
            injector.crash_node(testbed, "gros")

    def test_degrade_link_worsens_path(self):
        testbed = grid5000()
        network = testbed.network
        before = network.path("lille", "nancy")
        injector = FaultInjector(FaultSpec(seed=0))
        after = injector.degrade_link(network, "lille", "nancy")
        assert after.latency_ms > before.latency_ms
        assert after.bandwidth_gbps < before.bandwidth_gbps
        assert after.loss > before.loss
        with pytest.raises(FaultError):
            injector.degrade_link(network, "lille", "lille")


class TestRetryAndTimeout:
    def test_flaky_trainable_succeeds_after_retries(self):
        calls = {"n": 0}

        def flaky(config):
            calls["n"] += 1
            if calls["n"] % 3 != 0:  # fails twice, succeeds on the 3rd call
                raise RuntimeError("flaky")
            return {"objective": float(config["a"])}

        runner = TrialRunner(
            flaky,
            RandomSearch(_space(), seed=0),
            metric="objective",
            num_samples=2,
            max_retries=2,
        )
        analysis = runner.run()
        assert all(t.status is TrialStatus.TERMINATED for t in analysis.trials)
        assert all(t.cost["retries"] == 2 for t in analysis.trials)
        assert analysis.cost_profile().retries == 4

    def test_retries_exhausted_surrenders_to_searcher(self):
        class Recording(RandomSearch):
            def __init__(self, space):
                super().__init__(space, seed=0)
                self.errors = []

            def on_trial_error(self, trial_id, config):
                self.errors.append(trial_id)
                super().on_trial_error(trial_id, config)

        search = Recording(_space())
        calls = {"n": 0}

        def always_fails(config):
            calls["n"] += 1
            raise RuntimeError("permanent")

        runner = TrialRunner(
            always_fails,
            search,
            metric="objective",
            num_samples=1,
            max_retries=3,
        )
        analysis = runner.run()
        trial = analysis.trials[0]
        assert calls["n"] == 4  # 1 try + 3 retries
        assert trial.status is TrialStatus.ERROR
        assert search.errors == [trial.trial_id]  # exactly once, after retries

    def test_hung_trainable_times_out_and_retries(self):
        runner = TrialRunner(
            _hang_then_succeed,
            RandomSearch(_space(), seed=0),
            metric="objective",
            num_samples=1,
            max_retries=1,
            trial_timeout_s=0.2,
        )
        analysis = runner.run()
        trial = analysis.trials[0]
        assert trial.status is TrialStatus.TERMINATED
        assert trial.cost["timeouts"] == 1
        assert trial.cost["retries"] == 1

    def test_timeout_without_retry_is_an_error(self):
        def hangs(config):
            time.sleep(10.0)

        runner = TrialRunner(
            hangs,
            RandomSearch(_space(), seed=0),
            metric="objective",
            num_samples=1,
            trial_timeout_s=0.2,
        )
        analysis = runner.run()
        trial = analysis.trials[0]
        assert trial.status is TrialStatus.ERROR
        assert "TrialTimeout" in trial.error

    def test_process_executor_retries_in_worker(self):
        runner = TrialRunner(
            _flaky_by_attempt,
            RandomSearch(_space(), seed=0),
            metric="objective",
            num_samples=2,
            executor="process",
            max_workers=2,
            max_retries=3,
        )
        analysis = runner.run()
        assert all(t.status is TrialStatus.TERMINATED for t in analysis.trials)
        assert all(t.cost["retries"] == 2 for t in analysis.trials)

    def test_process_raise_on_failed_attaches_partial_analysis(self):
        runner = TrialRunner(
            _failing_objective,
            RandomSearch(_space(), seed=0),
            metric="objective",
            num_samples=6,
            executor="process",
            max_workers=2,
            raise_on_failed_trial=True,
        )
        with pytest.raises(TrialError) as excinfo:
            runner.run()
        analysis = excinfo.value.analysis
        assert analysis is not None
        assert any(t.status is TrialStatus.ERROR for t in analysis.trials)

    def test_validation_of_fault_tolerance_params(self):
        with pytest.raises(ValidationError):
            TrialRunner(
                _ok_objective,
                RandomSearch(_space(), seed=0),
                metric="objective",
                max_retries=-1,
            )
        with pytest.raises(ValidationError):
            TrialRunner(
                _ok_objective,
                RandomSearch(_space(), seed=0),
                metric="objective",
                trial_timeout_s=0.0,
            )


class TestRunnerFixes:
    def test_non_numeric_aux_results_are_dropped(self):
        def trainable(config):
            return {"objective": 2.0, "deployment": "edge-gateway", "count": "7"}

        runner = TrialRunner(
            trainable, RandomSearch(_space(), seed=0), metric="objective", num_samples=1
        )
        analysis = runner.run()
        result = analysis.trials[0].result
        assert result["objective"] == 2.0
        assert result["count"] == 7.0
        assert "deployment" not in result

    def test_non_numeric_target_metric_is_still_an_error(self):
        def trainable(config):
            return {"objective": "broken"}

        runner = TrialRunner(
            trainable, RandomSearch(_space(), seed=0), metric="objective", num_samples=1
        )
        analysis = runner.run()
        assert analysis.trials[0].status is TrialStatus.ERROR

    def test_scheduler_access_is_serialized(self):
        class RacyScheduler(TrialScheduler):
            """Counts concurrent entries; any overlap is a violation."""

            def __init__(self):
                super().__init__("min")
                self.active = 0
                self.violations = 0
                self.completed = 0

            def _enter(self):
                if self.active != 0:
                    self.violations += 1
                self.active += 1
                time.sleep(0.001)
                self.active -= 1

            def on_result(self, trial, step, value):
                self._enter()
                return TrialDecision.CONTINUE

            def on_complete(self, trial):
                self._enter()
                self.completed += 1

        def reporting(config, reporter):
            for step in range(4):
                reporter.report(float(config["a"] + step), step=step + 1)
            return {"objective": float(config["a"])}

        scheduler = RacyScheduler()
        runner = TrialRunner(
            reporting,
            RandomSearch(_space(), seed=0),
            metric="objective",
            num_samples=8,
            executor="thread",
            max_workers=4,
            scheduler=scheduler,
        )
        analysis = runner.run()
        assert scheduler.completed == 8
        assert scheduler.violations == 0
        assert len(analysis.trials) == 8


def _conf_dict(workdir, num_samples=6, **extra):
    data = {
        "name": "ft_campaign",
        "variables": [{"name": "x", "type": "integer", "low": 0, "high": 10}],
        "objectives": [{"metric": "latency", "mode": "min"}],
        "algorithm": {"search": "random"},
        "num_samples": num_samples,
        "seed": 3,
        "workdir": str(workdir),
    }
    data.update(extra)
    return data


class TestFaultyCampaign:
    def test_campaign_with_injected_faults_completes(self, tmp_path):
        conf = OptimizerConf.from_dict(
            _conf_dict(
                tmp_path,
                num_samples=20,
                max_retries=3,
                faults={"transient": 0.2},
            )
        )

        def evaluator(config, seed=None, duration=None):
            return {"latency": float(config["x"])}

        manager = OptimizationManager(conf, evaluator=evaluator)
        outcome = manager.run()
        summary = outcome.summary
        assert summary.n_evaluations == conf.num_samples
        assert manager.fault_injector.injected["transient"] > 0
        assert summary.cost_profile["retries"] > 0
        assert "fault tolerance:" in summary.render()

    def test_conf_validates_fault_rates(self, tmp_path):
        with pytest.raises(ValidationError):
            OptimizerConf.from_dict(_conf_dict(tmp_path, faults={"transient": 2.0}))
        with pytest.raises(ValidationError):
            OptimizerConf.from_dict(_conf_dict(tmp_path, max_retries=-1))

    def test_conf_round_trips_through_to_dict(self, tmp_path):
        conf = OptimizerConf.from_dict(
            _conf_dict(tmp_path, max_retries=2, faults={"straggler": 0.1})
        )
        clone = OptimizerConf.from_dict(conf.to_dict())
        assert clone.max_retries == 2
        assert clone.faults == {"straggler": 0.1}


class TestCheckpointResume:
    def test_resume_runs_only_the_remaining_trials(self, tmp_path):
        calls = {"n": 0}

        def evaluator(config, seed=None, duration=None):
            calls["n"] += 1
            return {"latency": float(config["x"])}

        # Phase 1: a campaign that stops after 6 of the eventual 10 samples
        # (stands in for an interrupted run — the checkpoint is identical).
        first = OptimizationManager(
            OptimizerConf.from_dict(_conf_dict(tmp_path, num_samples=6)),
            evaluator=evaluator,
        )
        first.run()
        assert calls["n"] == 6
        assert (first.run_dir / "checkpoint.json").exists()

        # Phase 2: resume to the full budget; only 4 new evaluations happen.
        second = OptimizationManager(
            OptimizerConf.from_dict(_conf_dict(tmp_path, num_samples=10)),
            evaluator=evaluator,
            resume_from=first.run_dir,
        )
        outcome = second.run()
        assert calls["n"] == 10
        assert outcome.summary.n_evaluations == 10
        # Same trial count as an uninterrupted 10-sample campaign.
        uninterrupted = OptimizationManager(
            OptimizerConf.from_dict(_conf_dict(tmp_path / "fresh", num_samples=10)),
            evaluator=lambda config, seed=None, duration=None: {
                "latency": float(config["x"])
            },
        )
        assert uninterrupted.run().summary.n_evaluations == 10

    def test_checkpoint_contents_round_trip(self, tmp_path):
        conf = OptimizerConf.from_dict(_conf_dict(tmp_path, num_samples=3))
        manager = OptimizationManager(
            conf, evaluator=lambda config, **kw: {"latency": 1.0}
        )
        manager.run()
        records = manager.optimization.archive.load_checkpoint()
        assert len(records) == 3
        rebuilt = [Trial.from_dict(r) for r in records]
        assert all(t.status is TrialStatus.TERMINATED for t in rebuilt)
        assert all("objective" in t.result for t in rebuilt)

    def test_resume_from_requires_evaluator_manager(self, tmp_path):
        from repro.errors import OptimizationError
        from repro.optimizer.manager import CallableOptimization

        conf = OptimizerConf.from_dict(_conf_dict(tmp_path))
        opt = CallableOptimization(
            conf.build_problem(),
            lambda config, **kw: {"latency": 1.0},
            workdir=str(tmp_path),
        )
        with pytest.raises(OptimizationError):
            OptimizationManager(conf, optimization=opt, resume_from=tmp_path)


class TestStandaloneValidate:
    def test_validate_does_not_launch_a_campaign(self, tmp_path):
        calls = {"n": 0}

        def evaluator(config, seed=None, duration=None):
            calls["n"] += 1
            return {"latency": float(config["x"]) + (seed or 0) * 0.0}

        conf = OptimizerConf.from_dict(_conf_dict(tmp_path, repeat=2))
        manager = OptimizationManager(conf, evaluator=evaluator)
        outcome = manager.validate({"x": 5})
        assert calls["n"] == 3  # repeat + 1 — and no extra campaign
        assert outcome.summary.algorithm == {"search": "validation"}
        assert outcome.summary.n_evaluations == 3
        assert outcome.summary.best_configuration == {"x": 5}
        assert outcome.summary.best_value == pytest.approx(outcome.validation.mean)
        assert len(outcome.validation_runs) == 3


class TestWallClockTimeout:
    def test_runaway_simulation_is_cut_off(self):
        env = Environment()

        def runaway(env):
            while True:
                yield env.timeout(1.0)

        env.process(runaway(env))
        with pytest.raises(WallClockTimeout):
            env.run(wall_timeout_s=0.05)

    def test_invalid_budget_rejected(self):
        with pytest.raises(ValueError):
            Environment().run(wall_timeout_s=0.0)

    def test_normal_run_unaffected(self):
        env = Environment()

        def short(env):
            yield env.timeout(5.0)

        env.process(short(env))
        env.run(wall_timeout_s=30.0)
        assert env.now == 5.0


class TestCliResume:
    def _conf(self, tmp_path):
        return {
            "name": "cli_resume",
            "variables": [
                {"name": "http", "type": "integer", "low": 20, "high": 60},
                {"name": "download", "type": "integer", "low": 20, "high": 60},
                {"name": "simsearch", "type": "integer", "low": 20, "high": 60},
                {"name": "extract", "type": "integer", "low": 3, "high": 9},
            ],
            "objectives": [{"metric": "user_resp_time", "mode": "min"}],
            "algorithm": {"search": "random"},
            "num_samples": 3,
            "seed": 0,
            "duration": 120.0,
            "workdir": str(tmp_path / "work"),
        }

    def test_resume_replays_without_rerunning(self, tmp_path, capsys):
        conf_path = tmp_path / "conf.json"
        conf_path.write_text(json.dumps(self._conf(tmp_path)))
        assert main(["optimize", str(conf_path)]) == 0
        run_dir = tmp_path / "work" / "cli_resume"
        assert (run_dir / "optimizer_conf.json").exists()
        assert (run_dir / "checkpoint.json").exists()
        eval_dirs = len(list(run_dir.glob("optimization-*")))
        capsys.readouterr()

        # Resume without the conf file: it is reloaded from the run dir, all
        # trials replay from the checkpoint, and nothing re-executes.
        assert main(["optimize", "--resume", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "Optimization summary" in out
        assert len(list(run_dir.glob("optimization-*"))) == eval_dirs

    def test_optimize_requires_conf_or_resume(self):
        with pytest.raises(SystemExit):
            main(["optimize"])

    def test_resume_without_saved_conf_fails(self, tmp_path):
        with pytest.raises(SystemExit):
            main(["optimize", "--resume", str(tmp_path)])

"""Tests for archive packing, trial logging, and multi-GPU engine nodes."""

import json

import pytest

from repro.bayesopt import Integer, Space
from repro.engine import (
    AnalyticEngineModel,
    EngineModelParams,
    GpuModel,
    ThreadPoolConfig,
    simulate_engine,
)
from repro.errors import ValidationError
from repro.experiments import EvaluationRecord, ExperimentArchive, ExperimentManifest
from repro.search import RandomSearch, run


class TestArchivePacking:
    def _filled_archive(self, tmp_path) -> ExperimentArchive:
        archive = ExperimentArchive(tmp_path / "work", ExperimentManifest(name="exp", seed=5))
        directory = archive.new_evaluation_dir()
        archive.store_evaluation(
            EvaluationRecord(index=1, configuration={"http": 54}, metrics={"resp": 2.48}),
            directory,
        )
        archive.store_summary({"best_value": 2.48})
        return archive

    def test_pack_unpack_roundtrip(self, tmp_path):
        archive = self._filled_archive(tmp_path)
        tarball = archive.pack()
        assert tarball.name == "exp.tar.gz"
        restored = ExperimentArchive.unpack(tarball, tmp_path / "restored")
        assert restored.manifest.seed == 5
        assert restored.load_summary() == {"best_value": 2.48}
        assert restored.load_evaluations()[0]["configuration"] == {"http": 54}

    def test_pack_custom_destination(self, tmp_path):
        archive = self._filled_archive(tmp_path)
        target = archive.pack(tmp_path / "out" / "bundle.tar.gz")
        assert target.exists()
        assert target.parent.name == "out"


class TestTrialLogging:
    def test_jsonl_per_trial(self, tmp_path):
        space = Space([Integer(0, 9, name="a")])
        analysis = run(
            lambda config: float(config["a"]),
            search_alg=RandomSearch(space, seed=0),
            metric="loss",
            num_samples=7,
            name="logged",
            log_dir=str(tmp_path),
        )
        lines = (tmp_path / "logged.jsonl").read_text().strip().splitlines()
        assert len(lines) == 7
        records = [json.loads(line) for line in lines]
        assert all(r["status"] == "terminated" for r in records)
        logged_ids = {r["trial_id"] for r in records}
        assert logged_ids == {t.trial_id for t in analysis.trials}

    def test_log_truncated_between_runs(self, tmp_path):
        space = Space([Integer(0, 9, name="a")])
        for _ in range(2):
            run(
                lambda config: 1.0,
                search_alg=RandomSearch(space, seed=0),
                metric="loss",
                num_samples=3,
                name="again",
                log_dir=str(tmp_path),
            )
        lines = (tmp_path / "again.jsonl").read_text().strip().splitlines()
        assert len(lines) == 3


class TestMultiGpu:
    def test_sharing_penalty_spread_over_boards(self):
        one = GpuModel(EngineModelParams(gpus_per_node=1))
        two = GpuModel(EngineModelParams(gpus_per_node=2))
        assert two.inference_time(8) < one.inference_time(8)
        assert two.inference_time(1) == one.inference_time(1)

    def test_memory_per_board(self):
        one = GpuModel(EngineModelParams(gpus_per_node=1))
        two = GpuModel(EngineModelParams(gpus_per_node=2))
        # 7 slots on one board ≈ 10 GB; split 4+3 over two boards is far less
        assert one.memory_gb(7) == pytest.approx(10.0, rel=0.02)
        assert two.memory_gb(7) < one.memory_gb(7) / 2

    def test_defaults_unchanged(self):
        """n_gpus=1 must reproduce the calibrated single-GPU behaviour."""
        model = AnalyticEngineModel(EngineModelParams())
        baseline = model.response_time(ThreadPoolConfig(40, 40, 7, 40), 80)
        assert baseline == pytest.approx(2.634, abs=0.01)

    def test_second_gpu_does_not_hurt(self):
        """GPU is not the bottleneck (paper: 35-60 % util): adding a board
        leaves the response essentially unchanged at the paper's optimum."""
        one = AnalyticEngineModel(EngineModelParams(gpus_per_node=1))
        two = AnalyticEngineModel(EngineModelParams(gpus_per_node=2))
        cfg = ThreadPoolConfig(54, 54, 7, 53)
        assert two.response_time(cfg, 80) <= one.response_time(cfg, 80) * 1.001

    def test_des_supports_multi_gpu(self):
        result = simulate_engine(
            ThreadPoolConfig(54, 54, 7, 53),
            80,
            duration=150.0,
            warmup=30.0,
            seed=2,
            params=EngineModelParams(gpus_per_node=2),
        )
        assert result.user_response_time.mean > 0
        assert result.gpu_memory_gb < 10.0  # per-board footprint shrinks

    def test_cores_move_the_optimum(self):
        """Paper Sec. IV: hardware changes require re-optimization; more
        CPU cores shift the extract optimum upward."""
        pre = ThreadPoolConfig(54, 54, 7, 53)
        small = AnalyticEngineModel(EngineModelParams(cpu_cores=40.0))
        big = AnalyticEngineModel(EngineModelParams(cpu_cores=64.0))
        curve_small = {e: small.response_time(pre.replace(extract=e), 80) for e in range(3, 10)}
        curve_big = {e: big.response_time(pre.replace(extract=e), 80) for e in range(3, 10)}
        assert min(curve_big, key=curve_big.get) > min(curve_small, key=curve_small.get)

    def test_validation(self):
        with pytest.raises(ValidationError):
            EngineModelParams(gpus_per_node=0)

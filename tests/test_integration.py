"""End-to-end integration tests across the full stack.

These reproduce miniature versions of the paper's experiments so the whole
pipeline (testbed → services → engine DES → search → Phase III summary) is
exercised together. Durations are short; the benchmark harness runs the
full-scale versions.
"""

import pytest

from repro.monitoring import aggregate_runs
from repro.plantnet import (
    BASELINE,
    PRELIMINARY_OPTIMUM,
    REFINED_OPTIMUM,
    PlantNetScenario,
)
from repro.sensitivity import OATAnalysis, ParameterSweep


@pytest.fixture(scope="module")
def scenario():
    return PlantNetScenario(duration=300.0, warmup=60.0, repetitions=2, base_seed=42)


@pytest.fixture(scope="module")
def three_configs(scenario):
    return {
        name: scenario.run(config, 80)
        for name, config in (
            ("baseline", BASELINE),
            ("preliminary", PRELIMINARY_OPTIMUM),
            ("refined", REFINED_OPTIMUM),
        )
    }


class TestTableIVShape:
    def test_ordering(self, three_configs):
        base = three_configs["baseline"].user_response_time.mean
        pre = three_configs["preliminary"].user_response_time.mean
        ref = three_configs["refined"].user_response_time.mean
        assert pre < base
        assert ref <= pre * 1.01  # refined at least matches preliminary

    def test_gain_magnitude(self, three_configs):
        base = three_configs["baseline"].user_response_time.mean
        pre = three_configs["preliminary"].user_response_time.mean
        gain = 1 - pre / base
        assert 0.02 <= gain <= 0.15  # paper: 6.9 %

    def test_gpu_memory_reduction(self, three_configs):
        base_mem = three_configs["baseline"].aggregate.gpu_memory_gb
        ref_mem = three_configs["refined"].aggregate.gpu_memory_gb
        assert 1 - ref_mem / base_mem == pytest.approx(0.30, abs=0.05)


class TestWorkloadScaling:
    def test_baseline_hits_tolerance_near_120(self, scenario):
        """Fig. 3: ~4 s response at 120 simultaneous requests."""
        result = scenario.run(BASELINE, 120, repetitions=1)
        assert result.user_response_time.mean == pytest.approx(3.86, rel=0.12)

    def test_preliminary_wins_at_every_workload(self, scenario):
        for requests in (80, 120):
            base = scenario.run(BASELINE, requests, repetitions=1)
            pre = scenario.run(PRELIMINARY_OPTIMUM, requests, repetitions=1)
            assert pre.user_response_time.mean < base.user_response_time.mean, requests


class TestOATRefinement:
    def test_extract_oat_recovers_refined_optimum(self, scenario):
        """The Sec. IV-C workflow: OAT around the preliminary optimum must
        point at extract=6 (the paper's refined optimum)."""
        analysis = OATAnalysis(
            lambda cfg: scenario.evaluate(cfg, 80, seed=7, repetitions=1),
            PRELIMINARY_OPTIMUM.to_dict(),
        )
        result = analysis.run([ParameterSweep.around("extract", 7, 2, minimum=3)])
        best_extract, _ = result.best("extract", "user_resp_time")
        assert best_extract in (6, 7)
        curve = dict(result.metric_curve("extract", "user_resp_time"))
        assert curve[5] > curve[6]
        assert curve[9] > curve[7]

    def test_cpu_saturates_at_large_extract(self, scenario):
        analysis = OATAnalysis(
            lambda cfg: scenario.evaluate(cfg, 80, seed=7, repetitions=1),
            PRELIMINARY_OPTIMUM.to_dict(),
        )
        result = analysis.run([ParameterSweep("extract", (5, 9))])
        curve = dict(result.metric_curve("extract", "cpu_usage"))
        assert curve[9] > curve[5]
        assert curve[9] > 0.95


class TestRepeatability:
    def test_seven_repetition_protocol(self):
        """The paper's variance-reduction protocol shrinks the std error."""
        scenario = PlantNetScenario(duration=200.0, warmup=40.0, base_seed=5)
        runs = [scenario.run(BASELINE, 80, repetitions=1, seed=s) for s in range(7)]
        singles = [r.user_response_time.mean for r in runs]
        pooled = aggregate_runs([run.runs[0] for run in runs])
        spread = max(singles) - min(singles)
        assert pooled.user_response_time.count == sum(
            len(r.runs[0].series.user_response_time) for r in runs
        )
        assert spread < 0.2  # repetitions agree within a tight band

"""Tests for the monitoring collector and repetition aggregation."""

import pytest

from repro import simcore
from repro.engine import BASELINE_CONFIG, simulate_engine
from repro.errors import ValidationError
from repro.monitoring import MetricCollector, aggregate_runs


class TestMetricCollector:
    def test_samples_probes(self):
        env = simcore.Environment()
        pool = simcore.Resource(env, capacity=2, name="workers")

        def busy(env, pool):
            with pool.request() as req:
                yield req
                yield env.timeout(100.0)

        env.process(busy(env, pool))
        collector = MetricCollector(env, interval=10.0)
        collector.add_probe("occupancy", pool.occupancy)
        collector.start()
        env.run(until=50.0)
        series = collector.series["occupancy"]
        assert len(series) == 4  # t=10..40 (stop event fires before t=50 tick)
        assert series.values[-1] == pytest.approx(0.5)

    def test_probe_after_start_rejected(self):
        env = simcore.Environment()
        collector = MetricCollector(env, interval=1.0)
        collector.start()
        with pytest.raises(ValidationError):
            collector.add_probe("x", lambda: 0.0)

    def test_duplicate_probe_rejected(self):
        env = simcore.Environment()
        collector = MetricCollector(env, interval=1.0)
        collector.add_probe("x", lambda: 0.0)
        with pytest.raises(ValidationError):
            collector.add_probe("x", lambda: 1.0)

    def test_stop(self):
        env = simcore.Environment()
        collector = MetricCollector(env, interval=1.0)
        collector.add_probe("x", lambda: 1.0)
        collector.start()
        env.run(until=3.5)
        collector.stop()
        env.run(until=10.0)
        assert len(collector.series["x"]) == 3


class TestAggregateRuns:
    @pytest.fixture(scope="class")
    def runs(self):
        return [
            simulate_engine(BASELINE_CONFIG, 40, duration=150.0, warmup=30.0, seed=s)
            for s in (1, 2, 3)
        ]

    def test_pools_all_samples(self, runs):
        agg = aggregate_runs(runs)
        expected = sum(len(r.series.user_response_time) for r in runs)
        assert agg.user_response_time.count == expected
        assert agg.repetitions == 3

    def test_mean_between_run_extremes(self, runs):
        agg = aggregate_runs(runs)
        means = [r.user_response_time.mean for r in runs]
        assert min(means) <= agg.user_response_time.mean <= max(means)

    def test_task_times_present(self, runs):
        agg = aggregate_runs(runs)
        assert agg.task_times["simsearch"].mean > 0

    def test_rejects_mixed_configs(self, runs):
        other = simulate_engine(
            BASELINE_CONFIG.replace(extract=6), 40, duration=150.0, warmup=30.0, seed=4
        )
        with pytest.raises(ValidationError):
            aggregate_runs([runs[0], other])

    def test_rejects_empty(self):
        with pytest.raises(ValidationError):
            aggregate_runs([])

"""Tests that the calibrated defaults still hit the paper's targets."""

import pytest

from repro.engine.calibration import (
    CALIBRATION_TARGETS,
    PRELIMINARY_OPTIMUM,
    REFINED_OPTIMUM,
    calibration_report,
)


class TestTargets:
    def test_configs_match_tables(self):
        assert PRELIMINARY_OPTIMUM.to_dict() == {
            "http": 54,
            "download": 54,
            "extract": 7,
            "simsearch": 53,
        }
        assert REFINED_OPTIMUM.extract == 6
        assert REFINED_OPTIMUM.simsearch == 53  # paper keeps 53 in Table IV

    def test_every_target_has_source(self):
        for target in CALIBRATION_TARGETS:
            assert target.source
            assert target.paper_value > 0


class TestAnalyticCalibration:
    @pytest.fixture(scope="class")
    def report(self):
        return calibration_report(evaluator="analytic")

    def test_all_targets_within_tolerance(self, report):
        failures = [r for r in report if not r["within_tolerance"]]
        assert not failures, failures

    def test_headline_numbers_tight(self, report):
        by_name = {r["target"]: r for r in report}
        # The three Table III/IV rows must be within a few percent.
        for name in ("baseline@80", "preliminary@80", "refined@80"):
            assert abs(by_name[name]["relative_error"]) < 0.04, by_name[name]


class TestDesCalibration:
    def test_des_within_tolerance(self):
        report = calibration_report(evaluator="des", duration=300.0, seed=3)
        failures = [r for r in report if not r["within_tolerance"]]
        assert not failures, failures

    def test_unknown_evaluator(self):
        with pytest.raises(ValueError):
            calibration_report(evaluator="nope")  # type: ignore[arg-type]

"""Tests for the Optimization base class, OptimizerConf and the manager."""

import pytest

from repro.bayesopt import Integer, Space
from repro.errors import OptimizationError, ValidationError
from repro.optimizer import (
    Objective,
    OptimizationManager,
    OptimizationProblem,
    OptimizerConf,
)
from repro.optimizer.optimization import Optimization
from repro.search.schedulers import AsyncHyperBandScheduler, FIFOScheduler


def _problem():
    return OptimizationProblem(
        Space([Integer(0, 20, name="a"), Integer(0, 20, name="b")]),
        Objective("loss", "min"),
    )


class RecordingOptimization(Optimization):
    """Concrete Optimization for tests: quadratic bowl, call recording."""

    def __init__(self, workdir, **kwargs):
        super().__init__(_problem(), workdir=workdir, **kwargs)
        self.launches = []

    def launch(self, config, **kwargs):
        self.launches.append((dict(config), dict(kwargs)))
        return {"loss": (config["a"] - 7) ** 2 + (config["b"] - 3) ** 2}

    def run(self):
        return self.execute(num_samples=15)


class TestOptimizationLifecycle:
    def test_prepare_launch_finalize_chain(self, tmp_path):
        opt = RecordingOptimization(tmp_path, seed=0)
        metrics = opt.run_objective({"a": 7, "b": 3})
        assert metrics["loss"] == 0.0
        assert metrics["objective"] == 0.0
        evaluations = opt.archive.load_evaluations()
        assert len(evaluations) == 1
        assert evaluations[0]["configuration"] == {"a": 7, "b": 3}

    def test_run_produces_summary_and_archive(self, tmp_path):
        opt = RecordingOptimization(tmp_path, seed=1)
        summary = opt.run()
        assert summary.n_evaluations == 15
        assert summary.best_value <= min(e["value"] for e in summary.evaluations)
        assert summary.convergence_evaluation <= 15
        assert opt.archive.load_summary()["best_value"] == summary.best_value
        # Phase I definition present
        assert summary.problem["objectives"][0]["metric"] == "loss"

    def test_summary_render(self, tmp_path):
        opt = RecordingOptimization(tmp_path, seed=2)
        text = opt.run().render()
        assert "Optimization summary" in text
        assert "best configuration" in text

    def test_summarize_requires_successes(self, tmp_path):
        from repro.search.runner import ExperimentAnalysis

        opt = RecordingOptimization(tmp_path)
        empty = ExperimentAnalysis(name="x", metric="objective", mode="min")
        with pytest.raises(OptimizationError):
            opt.summarize(empty, algorithm_info={}, sampling_info={}, wall_clock_s=0.0)


class TestOptimizerConf:
    def _conf_dict(self, **overrides):
        base = {
            "name": "exp",
            "variables": [
                {"name": "a", "type": "integer", "low": 0, "high": 20},
                {"name": "b", "type": "integer", "low": 0, "high": 20},
            ],
            "objectives": [{"metric": "loss"}],
            "num_samples": 10,
        }
        base.update(overrides)
        return base

    def test_build_space_and_problem(self):
        conf = OptimizerConf.from_dict(self._conf_dict())
        assert conf.build_space().names == ["a", "b"]
        assert conf.build_problem().primary_metric == "loss"

    def test_variable_types(self):
        conf = OptimizerConf.from_dict(
            self._conf_dict(
                variables=[
                    {"name": "i", "type": "integer", "low": 1, "high": 5},
                    {"name": "r", "type": "real", "low": 0.1, "high": 10.0, "prior": "log-uniform"},
                    {"name": "c", "type": "categorical", "categories": ["x", "y"]},
                ]
            )
        )
        space = conf.build_space()
        assert len(space) == 3

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValidationError, match="unknown optimizer_conf keys"):
            OptimizerConf.from_dict(self._conf_dict(banana=1))

    def test_unknown_variable_type(self):
        with pytest.raises(ValidationError):
            OptimizerConf.from_dict(
                self._conf_dict(variables=[{"name": "x", "type": "bool"}])
            ).build_space()

    def test_scheduler_building(self):
        conf = OptimizerConf.from_dict(self._conf_dict(scheduler={"type": "fifo"}))
        assert isinstance(conf.build_scheduler(), FIFOScheduler)
        conf = OptimizerConf.from_dict(
            self._conf_dict(scheduler={"type": "asha", "grace_period": 2})
        )
        assert isinstance(conf.build_scheduler(), AsyncHyperBandScheduler)
        conf = OptimizerConf.from_dict(self._conf_dict(scheduler={"type": "wat"}))
        with pytest.raises(ValidationError):
            conf.build_scheduler()

    def test_json_roundtrip(self, tmp_path):
        from repro.utils.serialization import dump_json

        path = dump_json(self._conf_dict(), tmp_path / "conf.json")
        conf = OptimizerConf.from_json(path)
        assert conf.name == "exp"


class TestOptimizationManager:
    def _conf(self, tmp_path, **overrides):
        data = {
            "name": "managed",
            "variables": [{"name": "a", "type": "integer", "low": 0, "high": 20}],
            "objectives": [{"metric": "loss"}],
            "algorithm": {"base_estimator": "ET", "n_initial_points": 5},
            "num_samples": 12,
            "seed": 0,
            "workdir": str(tmp_path),
        }
        data.update(overrides)
        return OptimizerConf.from_dict(data)

    @staticmethod
    def _evaluator(config, seed=None, duration=None):
        return {"loss": (config["a"] - 13) ** 2}

    def test_runs_campaign(self, tmp_path):
        manager = OptimizationManager(self._conf(tmp_path), evaluator=self._evaluator)
        outcome = manager.run()
        assert outcome.summary.best_value <= 4.0
        assert outcome.validation is None

    def test_repeat_validation(self, tmp_path):
        manager = OptimizationManager(
            self._conf(tmp_path, repeat=4, duration=100.0), evaluator=self._evaluator
        )
        outcome = manager.run()
        assert outcome.validation is not None
        assert len(outcome.validation_runs) == 5
        assert outcome.validation.mean == pytest.approx(outcome.summary.best_value, abs=1e-9)

    def test_needs_exactly_one_backend(self, tmp_path):
        conf = self._conf(tmp_path)
        with pytest.raises(OptimizationError):
            OptimizationManager(conf)

    def test_validation_seeds_passed(self, tmp_path):
        seeds = []

        def evaluator(config, seed=None, duration=None):
            seeds.append(seed)
            return {"loss": 1.0}

        conf = self._conf(tmp_path, repeat=2, num_samples=3)
        manager = OptimizationManager(conf, evaluator=evaluator)
        manager.run()
        validation_seeds = [s for s in seeds if s is not None]
        assert len(set(validation_seeds)) == 3  # distinct per repetition

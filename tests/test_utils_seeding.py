"""Tests for repro.utils.seeding."""

import numpy as np

from repro.utils.seeding import SeedSequenceFactory, derive_seed, spawn_rng


class TestSpawnRng:
    def test_deterministic(self):
        assert spawn_rng(7).integers(0, 1000) == spawn_rng(7).integers(0, 1000)

    def test_from_generator_spawns_child(self):
        parent = np.random.default_rng(0)
        child = spawn_rng(parent)
        assert isinstance(child, np.random.Generator)

    def test_none_allowed(self):
        assert isinstance(spawn_rng(None), np.random.Generator)


class TestDeriveSeed:
    def test_stable_across_calls(self):
        assert derive_seed(42, "workload", 3) == derive_seed(42, "workload", 3)

    def test_components_matter(self):
        assert derive_seed(42, "a") != derive_seed(42, "b")
        assert derive_seed(42, "a", 0) != derive_seed(42, "a", 1)

    def test_base_matters(self):
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_positive_63bit(self):
        seed = derive_seed(123456789, "very-long-component-name", 999)
        assert 0 <= seed < 2**63


class TestSeedSequenceFactory:
    def test_same_name_same_stream(self):
        factory = SeedSequenceFactory(5)
        a = factory.rng("workload").integers(0, 10**9)
        b = factory.rng("workload").integers(0, 10**9)
        assert a == b

    def test_different_names_independent(self):
        factory = SeedSequenceFactory(5)
        assert factory.seed("a") != factory.seed("b")

    def test_seeds_distinct(self):
        factory = SeedSequenceFactory(5)
        seeds = list(factory.seeds("reps", 20))
        assert len(set(seeds)) == 20

"""Tests for the Services abstraction and scenario deployment."""

import pytest

from repro.errors import DeploymentError, ValidationError
from repro.services import (
    Layer,
    LayerMapping,
    ScenarioDefinition,
    Service,
    ServiceContext,
    ServiceRegistry,
)
from repro.testbed import grid5000


class EchoService(Service):
    """Minimal service for tests: claims one core per node."""

    name = "echo"

    def deploy(self, context: ServiceContext) -> None:
        for node in context.nodes:
            context.deployment.place(self.name, node, cores=1)
        self.payload = context.option("payload", "none")


class TestRegistry:
    def test_register_and_create(self):
        registry = ServiceRegistry()
        registry.register(EchoService)
        assert "echo" in registry
        service = registry.create("echo")
        assert isinstance(service, EchoService)

    def test_unknown_service(self):
        registry = ServiceRegistry()
        with pytest.raises(ValidationError, match="unknown service"):
            registry.resolve("ghost")

    def test_conflicting_name_rejected(self):
        registry = ServiceRegistry()
        registry.register(EchoService)

        class Other(Service):
            name = "echo"

            def deploy(self, context):  # pragma: no cover
                pass

        with pytest.raises(ValidationError, match="already registered"):
            registry.register(Other)

    def test_non_service_rejected(self):
        registry = ServiceRegistry()
        with pytest.raises(ValidationError):
            registry.register(int)  # type: ignore[arg-type]

    def test_default_name_from_class(self):
        class MyCoolThing(Service):
            def deploy(self, context):  # pragma: no cover
                pass

        assert MyCoolThing.name == "mycoolthing"


class TestScenarioDeployment:
    def _definition(self) -> ScenarioDefinition:
        return ScenarioDefinition(
            layers=[
                Layer("cloud", (LayerMapping("echo", "chifflot", nodes=2, options={"payload": "hi"}),)),
                Layer("edge", (LayerMapping("echo", "gros", nodes=3),)),
            ]
        )

    def test_deploy_and_teardown(self):
        registry = ServiceRegistry()
        registry.register(EchoService)
        testbed = grid5000()
        definition = self._definition()
        definition.constrain("edge", "cloud", latency_ms=10.0, bandwidth_gbps=1.0)

        scenario = definition.deploy(testbed, registry=registry)
        assert len(scenario.services) == 2  # two instances, numbered
        assert scenario.service("echo").payload == "hi"
        assert scenario.layer_of_service["echo"] == "cloud"
        assert scenario.layer_of_service["echo.2"] == "edge"
        assert len(scenario.deployment) == 5
        # network constraint applied
        path = testbed.network.path("edge", "cloud")
        assert path.latency_ms == 10.0

        scenario.teardown()
        assert testbed.free_node_count("chifflot") == 8
        assert testbed.free_node_count("gros") == 124

    def test_failed_deploy_releases_everything(self):
        class Exploding(Service):
            name = "exploding"

            def deploy(self, context):
                raise DeploymentError("boom")

        registry = ServiceRegistry()
        registry.register(Exploding)
        testbed = grid5000()
        definition = ScenarioDefinition(
            layers=[Layer("cloud", (LayerMapping("exploding", "gros", nodes=2),))]
        )
        with pytest.raises(DeploymentError):
            definition.deploy(testbed, registry=registry)
        assert testbed.free_node_count("gros") == 124

    def test_duplicate_layer_names_rejected(self):
        with pytest.raises(ValidationError):
            ScenarioDefinition(
                layers=[
                    Layer("cloud", (LayerMapping("echo", "gros"),)),
                    Layer("cloud", (LayerMapping("echo", "gros"),)),
                ]
            )

    def test_empty_layer_rejected(self):
        with pytest.raises(ValidationError):
            Layer("cloud", ())

    def test_require_nodes_helper(self):
        service = EchoService()
        testbed = grid5000()
        res = testbed.reserve([__import__("repro.testbed", fromlist=["ResourceRequest"]).ResourceRequest("gros", 1)])
        from repro.testbed import Deployment

        context = ServiceContext(
            testbed=testbed, deployment=Deployment(reservation=res), nodes=res.all_nodes()
        )
        with pytest.raises(DeploymentError, match="needs 5 nodes"):
            service.require_nodes(context, 5)

"""Tests for the cross-process telemetry fabric.

Workers in a process pool record spans/metrics/digests locally; the parent
merges them back with ``runner_id``/``pid`` attribution. The end-to-end
test runs a real process-executor campaign and asserts every trial's trace
carries a worker-side ``evaluate`` span.
"""

import math

import pytest

import repro.observability as obs
from repro.bayesopt import Integer, Space
from repro.observability import fabric
from repro.observability.digest import PerfRecorder, get_perf, set_perf
from repro.observability.metrics import MetricsRegistry, get_registry, set_registry
from repro.observability.trace import RecordingTracer, get_tracer, set_tracer
from repro.search import RandomSearch, TrialStatus, run


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    set_tracer(None)
    set_registry(None)
    set_perf(None)


def _space():
    return Space([Integer(0, 30, name="a"), Integer(0, 10, name="b")])


def _objective(config):
    return (config["a"] - 21) ** 2 + (config["b"] - 4) ** 2


def _worker_payload():
    """Build a fabric payload the way a worker would (fresh local state)."""
    tracer = RecordingTracer()
    registry = MetricsRegistry()
    perf = PerfRecorder()
    with tracer.span("evaluate", trial_id="t0"):
        with tracer.span("des_run"):
            pass
    registry.counter("repro_evaluations_total", "evals").inc()
    perf.record("evaluate", 0.25)
    return {
        "schema": fabric.FABRIC_SCHEMA,
        "pid": 4242,
        "runner_id": "exp/w4242",
        "epoch_unix": tracer.started_at,
        "spans": [s.to_dict() for s in tracer.drain()],
        "metrics": registry.drain_state(),
        "perf": perf.drain_state(),
    }


class TestSpanIngest:
    def test_ids_remapped_parentage_preserved(self):
        parent_tracer = RecordingTracer()
        payload = _worker_payload()
        with parent_tracer.span("trial:t0") as trial_span:
            merged = fabric.merge_payload(
                payload,
                tracer=parent_tracer,
                registry=MetricsRegistry(),
                perf=PerfRecorder(),
                parent=trial_span,
                attributes={"trial_id": "t0"},
            )
        assert merged == 2
        spans = {s.name: s for s in parent_tracer.finished()}
        evaluate = spans["evaluate"]
        des = spans["des_run"]
        trial = spans["trial:t0"]
        # worker root attaches to the trial span; intra-payload parentage kept
        assert evaluate.parent_id == trial.span_id
        assert des.parent_id == evaluate.span_id
        assert des.span_id != evaluate.span_id

    def test_attribution_stamped(self):
        parent_tracer = RecordingTracer()
        fabric.merge_payload(
            _worker_payload(),
            tracer=parent_tracer,
            registry=MetricsRegistry(),
            perf=PerfRecorder(),
            attributes={"trial_id": "t0"},
        )
        for span in parent_tracer.finished():
            assert span.attributes["runner_id"] == "exp/w4242"
            assert span.attributes["pid"] == 4242
            assert span.attributes["trial_id"] == "t0"

    def test_metrics_and_perf_merged(self):
        registry = MetricsRegistry()
        perf = PerfRecorder()
        fabric.merge_payload(
            _worker_payload(), tracer=RecordingTracer(), registry=registry, perf=perf
        )
        counter = registry.counter("repro_evaluations_total", "evals")
        assert sum(v for _, v in counter.series()) == 1
        assert perf.digest("evaluate").count == 1

    def test_merged_spans_stream_to_subscribers(self):
        parent_tracer = RecordingTracer()
        seen = []
        parent_tracer.subscribe(seen.append)
        fabric.merge_payload(
            _worker_payload(),
            tracer=parent_tracer,
            registry=MetricsRegistry(),
            perf=PerfRecorder(),
        )
        assert {s.name for s in seen} == {"evaluate", "des_run"}

    def test_malformed_payload_dropped_not_fatal(self):
        registry = MetricsRegistry()
        merged = fabric.merge_payload(
            {"schema": "wrong/1", "spans": [{"bad": True}]},
            tracer=RecordingTracer(),
            registry=registry,
            perf=PerfRecorder(),
        )
        assert merged == 0
        dropped = registry.counter(
            "repro_fabric_merge_dropped_total", "malformed fabric entries dropped during merge"
        )
        assert sum(v for _, v in dropped.series()) == 1

    def test_malformed_span_entries_dropped(self):
        payload = _worker_payload()
        payload["spans"].append({"garbage": 1})
        tracer = RecordingTracer()
        merged = fabric.merge_payload(
            payload, tracer=tracer, registry=MetricsRegistry(), perf=PerfRecorder()
        )
        assert merged == 2

    def test_clock_rebased_into_parent_timeline(self):
        parent_tracer = RecordingTracer()
        payload = _worker_payload()
        # pretend the worker epoch was 100s after the parent epoch
        payload["epoch_unix"] = parent_tracer.started_at + 100.0
        fabric.merge_payload(
            payload, tracer=parent_tracer, registry=MetricsRegistry(), perf=PerfRecorder()
        )
        for span in parent_tracer.finished():
            assert span.start_s >= 100.0

    def test_self_metric_counters(self):
        tracer = RecordingTracer()
        with tracer.span("x"):
            pass
        assert tracer.spans_recorded == 1

        def _broken(span):
            raise RuntimeError("bad consumer")

        tracer.subscribe(_broken)
        with tracer.span("y"):
            pass
        assert tracer.subscriber_errors == 1
        assert tracer.spans_recorded == 2


class TestWorkerLifecycle:
    def test_drain_outside_worker_is_none(self):
        assert fabric.drain_worker() is None
        assert not fabric.worker_active()

    def test_export_includes_tracer_self_metrics(self, tmp_path):
        tracer, registry = obs.enable()
        with tracer.span("x"):
            pass
        obs.export(tmp_path)
        import json

        metrics = json.loads((tmp_path / "metrics.json").read_text())
        names = {family["name"] for family in metrics["metrics"]}
        assert "repro_tracer_spans_recorded" in names
        assert "repro_tracer_subscriber_errors" in names
        obs.disable()


class TestProcessExecutorEndToEnd:
    def test_worker_spans_merged_with_attribution(self):
        """Acceptance: a process campaign yields worker-side evaluate spans
        (runner_id/pid stamped) for every trial, plus merged digests."""
        tracer, registry = obs.enable()
        try:
            analysis = run(
                _objective,
                search_alg=RandomSearch(_space(), seed=5),
                metric="loss",
                num_samples=4,
                executor="process",
                max_workers=2,
                name="fabric-e2e",
            )
            assert all(t.status is TrialStatus.TERMINATED for t in analysis.trials)
            spans = tracer.finished()
            evaluates = [s for s in spans if s.name == "evaluate"]
            by_trial = {s.attributes.get("trial_id") for s in evaluates}
            assert by_trial == {t.trial_id for t in analysis.trials}
            for span in evaluates:
                assert str(span.attributes["runner_id"]).startswith("fabric-e2e/w")
                assert isinstance(span.attributes["pid"], int)
                # adopted by the trial span
                parent = next(
                    s for s in spans if s.span_id == span.parent_id
                )
                assert parent.name == f"trial:{span.attributes['trial_id']}"
            # worker-measured costs landed on the trials
            for trial in analysis.trials:
                assert trial.cost["evaluate_s"] <= trial.runtime_s + 1e-9
            # digests: parent-side suggest + worker-side evaluate/queue-wait
            perf = get_perf()
            assert perf.digest("suggest").count == 4
            assert perf.digest("evaluate").count == 4
            assert perf.digest("queue_wait").count == 4
            # merge accounting
            merged = registry.counter(
                "repro_fabric_merged_spans_total",
                "worker spans merged into the parent tracer",
            )
            assert sum(v for _, v in merged.series()) >= 4
        finally:
            obs.disable()

    def test_process_campaign_without_observability_still_works(self):
        analysis = run(
            _objective,
            search_alg=RandomSearch(_space(), seed=6),
            metric="loss",
            num_samples=3,
            executor="process",
            max_workers=2,
        )
        assert all(t.status is TrialStatus.TERMINATED for t in analysis.trials)
        assert not get_tracer().enabled
        assert not get_registry().enabled
        assert not get_perf().enabled

    def test_perf_profile_has_hot_path_percentiles(self, tmp_path):
        """Acceptance: perf_profile.json reports p50/p90/p99 for the
        suggest / tell / evaluate / queue-wait ops."""
        import json

        obs.enable()
        try:
            run(
                _objective,
                search_alg=RandomSearch(_space(), seed=7),
                metric="loss",
                num_samples=4,
                executor="process",
                max_workers=2,
                name="fabric-profile",
            )
            obs.export(tmp_path)
        finally:
            obs.disable()
        profile = json.loads((tmp_path / "perf_profile.json").read_text())
        for op in ("suggest", "tell", "evaluate", "queue_wait"):
            entry = profile["ops"][op]
            for key in ("p50", "p90", "p99"):
                assert math.isfinite(entry[key]), (op, key)
        prom = (tmp_path / "metrics.prom").read_text()
        assert 'repro_latency_seconds{op="evaluate",quantile="0.99"}' in prom

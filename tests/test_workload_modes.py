"""Tests for open-loop and scheduled workload modes."""

import pytest

from repro.engine import BASELINE_CONFIG, IdentificationEngine, WorkloadSpec
from repro.errors import ValidationError


class TestWorkloadSpecModes:
    def test_mode_detection(self):
        assert WorkloadSpec().mode == "closed"
        assert WorkloadSpec(arrival_rate=10.0).mode == "open"
        assert (
            WorkloadSpec(
                simultaneous_requests=50, population_schedule=((0.0, 20), (100.0, 50))
            ).mode
            == "scheduled"
        )

    def test_exclusive_modes(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(arrival_rate=5.0, population_schedule=((0.0, 10),),
                         simultaneous_requests=10)

    def test_schedule_validation(self):
        with pytest.raises(ValidationError, match="start at t=0"):
            WorkloadSpec(simultaneous_requests=10, population_schedule=((5.0, 10),))
        with pytest.raises(ValidationError, match="strictly increasing"):
            WorkloadSpec(
                simultaneous_requests=10,
                population_schedule=((0.0, 10), (100.0, 5), (100.0, 10)),
            )
        with pytest.raises(ValidationError, match="schedule maximum"):
            WorkloadSpec(simultaneous_requests=99, population_schedule=((0.0, 10),))

    def test_population_at(self):
        spec = WorkloadSpec(
            simultaneous_requests=100,
            population_schedule=((0.0, 40), (200.0, 100), (400.0, 20)),
        )
        assert spec.population_at(0.0) == 40
        assert spec.population_at(199.9) == 40
        assert spec.population_at(200.0) == 100
        assert spec.population_at(500.0) == 20

    def test_arrival_rate_validated(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(arrival_rate=0.0)


class TestOpenLoop:
    def test_throughput_tracks_arrival_rate(self):
        workload = WorkloadSpec(
            simultaneous_requests=1, duration=300.0, warmup=50.0, arrival_rate=12.0
        )
        result = IdentificationEngine(BASELINE_CONFIG, workload, seed=4).run()
        assert result.throughput == pytest.approx(12.0, rel=0.12)

    def test_underloaded_response_is_service_time(self):
        workload = WorkloadSpec(
            simultaneous_requests=1, duration=250.0, warmup=50.0, arrival_rate=5.0
        )
        result = IdentificationEngine(BASELINE_CONFIG, workload, seed=4).run()
        # almost no queueing at 5 req/s against ~33 req/s capacity
        assert result.user_response_time.mean < 1.6

    def test_overload_grows_queues(self):
        light = IdentificationEngine(
            BASELINE_CONFIG,
            WorkloadSpec(simultaneous_requests=1, duration=220.0, warmup=40.0, arrival_rate=10.0),
            seed=2,
        ).run()
        heavy = IdentificationEngine(
            BASELINE_CONFIG,
            WorkloadSpec(simultaneous_requests=1, duration=220.0, warmup=40.0, arrival_rate=30.0),
            seed=2,
        ).run()
        assert heavy.user_response_time.mean > light.user_response_time.mean


class TestScheduledPopulation:
    def test_response_follows_population(self):
        workload = WorkloadSpec(
            simultaneous_requests=100,
            duration=600.0,
            warmup=30.0,
            population_schedule=((0.0, 40), (200.0, 100), (400.0, 20)),
        )
        result = IdentificationEngine(BASELINE_CONFIG, workload, seed=1).run()
        series = result.series.user_response_time
        t, v = series.times, series.values

        def window_mean(a, b):
            mask = (t > a) & (t <= b)
            return float(v[mask].mean())

        low1 = window_mean(60, 200)
        high = window_mean(260, 400)
        low2 = window_mean(470, 600)
        assert high > low1 * 1.5
        assert low2 < low1 * 1.2

    def test_population_can_drop_to_zero(self):
        workload = WorkloadSpec(
            simultaneous_requests=30,
            duration=300.0,
            warmup=20.0,
            population_schedule=((0.0, 30), (150.0, 0)),
        )
        result = IdentificationEngine(BASELINE_CONFIG, workload, seed=1).run()
        throughput = result.series.throughput
        tail = throughput.values[throughput.times > 200.0]
        assert (tail == 0).all()

    def test_scheduled_equals_constant_when_flat(self):
        constant = IdentificationEngine(
            BASELINE_CONFIG,
            WorkloadSpec(simultaneous_requests=40, duration=200.0, warmup=40.0),
            seed=9,
        ).run()
        flat_schedule = IdentificationEngine(
            BASELINE_CONFIG,
            WorkloadSpec(
                simultaneous_requests=40,
                duration=200.0,
                warmup=40.0,
                population_schedule=((0.0, 40),),
            ),
            seed=9,
        ).run()
        assert flat_schedule.user_response_time.mean == pytest.approx(
            constant.user_response_time.mean, rel=0.02
        )

"""Tests for open-loop and scheduled workload modes."""

import math

import pytest

import repro.engine.engine as engine_mod
from repro.engine import (
    ArrivalSchedule,
    BASELINE_CONFIG,
    IdentificationEngine,
    WorkloadSpec,
)
from repro.errors import ValidationError


class TestWorkloadSpecModes:
    def test_mode_detection(self):
        assert WorkloadSpec().mode == "closed"
        assert WorkloadSpec(arrival_rate=10.0).mode == "open"
        assert (
            WorkloadSpec(
                simultaneous_requests=50, population_schedule=((0.0, 20), (100.0, 50))
            ).mode
            == "scheduled"
        )

    def test_exclusive_modes(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(arrival_rate=5.0, population_schedule=((0.0, 10),),
                         simultaneous_requests=10)

    def test_schedule_validation(self):
        with pytest.raises(ValidationError, match="start at t=0"):
            WorkloadSpec(simultaneous_requests=10, population_schedule=((5.0, 10),))
        with pytest.raises(ValidationError, match="strictly increasing"):
            WorkloadSpec(
                simultaneous_requests=10,
                population_schedule=((0.0, 10), (100.0, 5), (100.0, 10)),
            )
        with pytest.raises(ValidationError, match="schedule maximum"):
            WorkloadSpec(simultaneous_requests=99, population_schedule=((0.0, 10),))

    def test_population_at(self):
        spec = WorkloadSpec(
            simultaneous_requests=100,
            population_schedule=((0.0, 40), (200.0, 100), (400.0, 20)),
        )
        assert spec.population_at(0.0) == 40
        assert spec.population_at(199.9) == 40
        assert spec.population_at(200.0) == 100
        assert spec.population_at(500.0) == 20

    def test_arrival_rate_validated(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(arrival_rate=0.0)

    def test_arrival_rate_must_be_finite(self):
        with pytest.raises(ValidationError, match="finite"):
            WorkloadSpec(arrival_rate=math.inf)
        with pytest.raises(ValidationError, match="finite"):
            WorkloadSpec(arrival_rate=math.nan)

    def test_arrival_schedule_is_open_mode(self):
        spec = WorkloadSpec(arrival_schedule=ArrivalSchedule.constant(5.0))
        assert spec.mode == "open"

    def test_arrival_schedule_exclusive_with_rate(self):
        with pytest.raises(ValidationError, match="exclusive"):
            WorkloadSpec(
                arrival_rate=5.0, arrival_schedule=ArrivalSchedule.constant(5.0)
            )


class TestArrivalSchedule:
    def test_constant(self):
        sched = ArrivalSchedule.constant(7.5)
        assert sched.rate_at(0.0) == 7.5
        assert sched.rate_at(1e9) == 7.5
        assert sched.mean_rate(100.0) == pytest.approx(7.5)

    def test_constant_rejects_nonpositive(self):
        with pytest.raises(ValidationError):
            ArrivalSchedule.constant(0.0)

    def test_rates_must_be_finite(self):
        with pytest.raises(ValidationError, match="finite"):
            ArrivalSchedule.piecewise([(0.0, math.inf)])
        with pytest.raises(ValidationError, match="finite"):
            ArrivalSchedule.piecewise([(0.0, 5.0), (10.0, math.nan)])
        with pytest.raises(ValidationError):
            ArrivalSchedule.piecewise([(0.0, -1.0)])

    def test_segments_must_increase_from_zero(self):
        with pytest.raises(ValidationError, match="t=0"):
            ArrivalSchedule.piecewise([(5.0, 1.0)])
        with pytest.raises(ValidationError, match="increasing"):
            ArrivalSchedule.piecewise([(0.0, 1.0), (10.0, 2.0), (10.0, 3.0)])
        with pytest.raises(ValidationError, match="positive rate"):
            ArrivalSchedule.piecewise([(0.0, 0.0), (10.0, 0.0)])

    def test_rate_at_bisects(self):
        sched = ArrivalSchedule.piecewise([(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)])
        assert sched.rate_at(0.0) == 1.0
        assert sched.rate_at(9.999) == 1.0
        assert sched.rate_at(10.0) == 2.0
        assert sched.rate_at(25.0) == 3.0

    def test_segments_clip_to_duration(self):
        sched = ArrivalSchedule.piecewise([(0.0, 1.0), (10.0, 2.0), (20.0, 3.0)])
        assert sched.segments(15.0) == ((0.0, 10.0, 1.0), (10.0, 15.0, 2.0))
        assert sched.arrivals_in(15.0) == pytest.approx(10.0 + 10.0)

    def test_diurnal_preserves_mean(self):
        sched = ArrivalSchedule.diurnal(4.0, 12.0, period=86400.0)
        assert sched.mean_rate(86400.0) == pytest.approx(8.0, rel=1e-6)
        assert sched.peak_rate(86400.0) <= 12.0
        assert min(r for _, r in sched.points) >= 4.0

    def test_flash_crowd_shape(self):
        sched = ArrivalSchedule.flash_crowd(2.0, 20.0, at=100.0, ramp=10.0, hold=50.0, decay=40.0)
        assert sched.rate_at(0.0) == 2.0
        assert sched.rate_at(115.0) == 20.0  # holding at the peak
        assert sched.rate_at(100.0 + 10.0 + 50.0 + 40.0) == 2.0  # decayed back

    def test_trace_from_sequence_and_file(self, tmp_path):
        sched = ArrivalSchedule.from_trace([0.5, 1.0, 1.0, 4.0])
        assert sched.is_trace
        assert sched.arrivals_in(2.0) == 3.0
        path = tmp_path / "trace.txt"
        path.write_text("# header\n0.5\n1.0\n\n1.0  # dup\n4.0\n")
        assert ArrivalSchedule.from_trace(path) == sched

    def test_trace_rejects_bad_lines(self, tmp_path):
        path = tmp_path / "trace.txt"
        path.write_text("0.5\nnot-a-number\n")
        with pytest.raises(ValidationError, match="not a timestamp"):
            ArrivalSchedule.from_trace(path)
        with pytest.raises(ValidationError, match="non-decreasing"):
            ArrivalSchedule.from_trace([2.0, 1.0])

    def test_dict_roundtrip(self):
        for sched in (
            ArrivalSchedule.piecewise([(0.0, 1.0), (10.0, 2.0)]),
            ArrivalSchedule.from_trace([0.0, 1.5, 3.0]),
        ):
            assert ArrivalSchedule.from_dict(sched.to_dict()) == sched


class TestOpenLoop:
    def test_throughput_tracks_arrival_rate(self):
        workload = WorkloadSpec(
            simultaneous_requests=1, duration=300.0, warmup=50.0, arrival_rate=12.0
        )
        result = IdentificationEngine(BASELINE_CONFIG, workload, seed=4).run()
        assert result.throughput == pytest.approx(12.0, rel=0.12)

    def test_underloaded_response_is_service_time(self):
        workload = WorkloadSpec(
            simultaneous_requests=1, duration=250.0, warmup=50.0, arrival_rate=5.0
        )
        result = IdentificationEngine(BASELINE_CONFIG, workload, seed=4).run()
        # almost no queueing at 5 req/s against ~33 req/s capacity
        assert result.user_response_time.mean < 1.6

    def test_overload_grows_queues(self):
        light = IdentificationEngine(
            BASELINE_CONFIG,
            WorkloadSpec(simultaneous_requests=1, duration=220.0, warmup=40.0, arrival_rate=10.0),
            seed=2,
        ).run()
        heavy = IdentificationEngine(
            BASELINE_CONFIG,
            WorkloadSpec(simultaneous_requests=1, duration=220.0, warmup=40.0, arrival_rate=30.0),
            seed=2,
        ).run()
        assert heavy.user_response_time.mean > light.user_response_time.mean


class TestScheduledOpenLoop:
    @staticmethod
    def _run(workload, seed=7):
        return IdentificationEngine(BASELINE_CONFIG, workload, seed=seed).run()

    def test_constant_schedule_byte_identical_to_plain_rate(self):
        """A single-constant-segment schedule makes the exact same RNG calls
        as plain ``arrival_rate`` mode, so every metric matches bit-for-bit."""
        plain = self._run(
            WorkloadSpec(duration=200.0, warmup=30.0, arrival_rate=9.0)
        )
        scheduled = self._run(
            WorkloadSpec(
                duration=200.0,
                warmup=30.0,
                arrival_schedule=ArrivalSchedule.constant(9.0),
            )
        )
        assert scheduled.completed_requests == plain.completed_requests
        assert scheduled.throughput == plain.throughput
        assert scheduled.user_response_time == plain.user_response_time
        assert scheduled.response_percentiles == plain.response_percentiles

    def test_batch_size_invariance(self, monkeypatch):
        """Batched gap draws equal repeated scalar draws, so results cannot
        depend on where batch boundaries fall."""
        workload = WorkloadSpec(duration=200.0, warmup=30.0, arrival_rate=9.0)
        big = self._run(workload)
        monkeypatch.setattr(engine_mod, "_ARRIVAL_BATCH", 8)
        small = self._run(workload)
        assert small.completed_requests == big.completed_requests
        assert small.throughput == big.throughput
        assert small.user_response_time == big.user_response_time

    def test_scheduled_run_is_deterministic(self):
        sched = ArrivalSchedule.piecewise([(0.0, 6.0), (80.0, 14.0), (160.0, 4.0)])
        workload = WorkloadSpec(duration=240.0, warmup=20.0, arrival_schedule=sched)
        a = self._run(workload)
        b = self._run(workload)
        assert a.completed_requests == b.completed_requests
        assert a.throughput == b.throughput
        assert a.user_response_time == b.user_response_time

    def test_throughput_follows_schedule(self):
        sched = ArrivalSchedule.piecewise([(0.0, 4.0), (150.0, 16.0)])
        workload = WorkloadSpec(duration=300.0, warmup=10.0, arrival_schedule=sched)
        result = self._run(workload)
        series = result.series.throughput
        t, v = series.times, series.values
        low = float(v[(t > 30) & (t <= 150)].mean())
        high = float(v[(t > 180) & (t <= 300)].mean())
        assert low == pytest.approx(4.0, rel=0.3)
        assert high == pytest.approx(16.0, rel=0.3)

    def test_zero_rate_segment_goes_quiet(self):
        sched = ArrivalSchedule.piecewise([(0.0, 10.0), (100.0, 0.0)])
        workload = WorkloadSpec(duration=240.0, warmup=10.0, arrival_schedule=sched)
        result = self._run(workload)
        series = result.series.throughput
        tail = series.values[series.times > 160.0]
        assert (tail == 0).all()

    def test_trace_replay_completes_every_arrival(self):
        stamps = [float(i) * 2.0 for i in range(40)]
        sched = ArrivalSchedule.from_trace(stamps)
        workload = WorkloadSpec(duration=200.0, warmup=0.0, arrival_schedule=sched)
        result = self._run(workload)
        assert result.completed_requests == len(stamps)


class TestScheduledPopulation:
    def test_response_follows_population(self):
        workload = WorkloadSpec(
            simultaneous_requests=100,
            duration=600.0,
            warmup=30.0,
            population_schedule=((0.0, 40), (200.0, 100), (400.0, 20)),
        )
        result = IdentificationEngine(BASELINE_CONFIG, workload, seed=1).run()
        series = result.series.user_response_time
        t, v = series.times, series.values

        def window_mean(a, b):
            mask = (t > a) & (t <= b)
            return float(v[mask].mean())

        low1 = window_mean(60, 200)
        high = window_mean(260, 400)
        low2 = window_mean(470, 600)
        assert high > low1 * 1.5
        assert low2 < low1 * 1.2

    def test_population_can_drop_to_zero(self):
        workload = WorkloadSpec(
            simultaneous_requests=30,
            duration=300.0,
            warmup=20.0,
            population_schedule=((0.0, 30), (150.0, 0)),
        )
        result = IdentificationEngine(BASELINE_CONFIG, workload, seed=1).run()
        throughput = result.series.throughput
        tail = throughput.values[throughput.times > 200.0]
        assert (tail == 0).all()

    def test_scheduled_equals_constant_when_flat(self):
        constant = IdentificationEngine(
            BASELINE_CONFIG,
            WorkloadSpec(simultaneous_requests=40, duration=200.0, warmup=40.0),
            seed=9,
        ).run()
        flat_schedule = IdentificationEngine(
            BASELINE_CONFIG,
            WorkloadSpec(
                simultaneous_requests=40,
                duration=200.0,
                warmup=40.0,
                population_schedule=((0.0, 40),),
            ),
            seed=9,
        ).run()
        assert flat_schedule.user_response_time.mean == pytest.approx(
            constant.user_response_time.mean, rel=0.02
        )

"""Tests for experiment archives and manifests."""

import pytest

from repro.errors import ValidationError
from repro.experiments import (
    EvaluationRecord,
    ExperimentArchive,
    ExperimentManifest,
    environment_info,
)


class TestManifest:
    def test_environment_captured(self):
        info = environment_info()
        assert "repro" in info and "numpy" in info and "python" in info

    def test_to_dict(self):
        manifest = ExperimentManifest(name="exp", seed=1, parameters={"R": 80})
        d = manifest.to_dict()
        assert d["name"] == "exp"
        assert d["parameters"]["R"] == 80
        assert d["environment"]["repro"]


class TestArchive:
    def test_directory_per_evaluation(self, tmp_path):
        archive = ExperimentArchive(tmp_path, ExperimentManifest(name="exp"))
        d1 = archive.new_evaluation_dir()
        d2 = archive.new_evaluation_dir()
        assert d1.name == "optimization-1"
        assert d2.name == "optimization-2"
        assert (tmp_path / "exp" / "manifest.json").exists()

    def test_store_and_load_evaluations(self, tmp_path):
        archive = ExperimentArchive(tmp_path, ExperimentManifest(name="exp"))
        for i in range(3):
            directory = archive.new_evaluation_dir()
            record = EvaluationRecord(
                index=i + 1,
                configuration={"http": 40 + i},
                metrics={"user_resp_time": 2.5 + i},
            )
            archive.store_evaluation(record, directory)
        loaded = archive.load_evaluations()
        assert [r["configuration"]["http"] for r in loaded] == [40, 41, 42]

    def test_store_without_directory_uses_index(self, tmp_path):
        archive = ExperimentArchive(tmp_path, ExperimentManifest(name="exp"))
        archive.new_evaluation_dir()
        archive.store_evaluation(EvaluationRecord(index=1, configuration={}))
        assert archive.load_evaluations()[0]["index"] == 1

    def test_store_missing_directory_rejected(self, tmp_path):
        archive = ExperimentArchive(tmp_path, ExperimentManifest(name="exp"))
        with pytest.raises(ValidationError):
            archive.store_evaluation(EvaluationRecord(index=9, configuration={}))

    def test_summary_roundtrip(self, tmp_path):
        archive = ExperimentArchive(tmp_path, ExperimentManifest(name="exp"))
        archive.store_summary({"best": {"http": 54}})
        assert archive.load_summary() == {"best": {"http": 54}}

    def test_reopen(self, tmp_path):
        archive = ExperimentArchive(tmp_path, ExperimentManifest(name="exp", seed=7))
        archive.new_evaluation_dir()
        archive.new_evaluation_dir()
        reopened = ExperimentArchive.open(tmp_path, "exp")
        assert reopened.manifest.seed == 7
        assert reopened.evaluation_count == 2
        # the counter continues, no collision
        assert reopened.new_evaluation_dir().name == "optimization-3"

    def test_reopen_missing(self, tmp_path):
        with pytest.raises(ValidationError):
            ExperimentArchive.open(tmp_path, "ghost")

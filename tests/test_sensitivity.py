"""Tests for OAT and Morris sensitivity analysis."""

import pytest

from repro.bayesopt import Real
from repro.errors import ValidationError
from repro.sensitivity import MorrisAnalysis, OATAnalysis, ParameterSweep


def _evaluator(config):
    # convex in 'x' with minimum at 6; 'y' matters 10x less
    return {
        "resp": (config["x"] - 6) ** 2 + 0.1 * (config["y"] - 50) ** 2 / 100.0,
        "cpu": min(1.0, 0.1 * config["x"]),
    }


class TestParameterSweep:
    def test_around(self):
        sweep = ParameterSweep.around("extract", 7, 2)
        assert sweep.values == (5, 6, 7, 8, 9)

    def test_around_clips_at_minimum(self):
        sweep = ParameterSweep.around("extract", 2, 3, minimum=1)
        assert sweep.values == (1, 2, 3, 4, 5)

    def test_needs_two_values(self):
        with pytest.raises(ValidationError):
            ParameterSweep("x", (1,))


class TestOAT:
    def _analysis(self):
        return OATAnalysis(_evaluator, {"x": 7, "y": 50})

    def test_varies_one_at_a_time(self):
        recorded = []

        def spy(config):
            recorded.append(dict(config))
            return _evaluator(config)

        analysis = OATAnalysis(spy, {"x": 7, "y": 50})
        analysis.run([ParameterSweep.around("x", 7, 2)])
        assert all(c["y"] == 50 for c in recorded)  # y held fixed
        assert [c["x"] for c in recorded] == [5, 6, 7, 8, 9]

    def test_best_and_refined(self):
        result = self._analysis().run(
            [ParameterSweep.around("x", 7, 2), ParameterSweep.around("y", 50, 3)]
        )
        best_x, best_val = result.best("x", "resp")
        assert best_x == 6
        refined = result.refined_config("resp")
        assert refined["x"] == 6

    def test_metric_curve(self):
        result = self._analysis().run([ParameterSweep.around("x", 7, 1)])
        curve = result.metric_curve("x", "resp")
        assert [v for v, _ in curve] == [6, 7, 8]
        assert curve[0][1] < curve[1][1] < curve[2][1]

    def test_effect_size(self):
        result = self._analysis().run(
            [ParameterSweep.around("x", 7, 2), ParameterSweep("y", (45, 50, 55))]
        )
        assert result.effect_size("x", "resp") > result.effect_size("y", "resp")

    def test_unknown_parameter_rejected(self):
        with pytest.raises(ValidationError):
            self._analysis().run([ParameterSweep("nope", (1, 2))])

    def test_unknown_curve_lookup(self):
        result = self._analysis().run([ParameterSweep.around("x", 7, 1)])
        with pytest.raises(ValidationError):
            result.metric_curve("zzz", "resp")

    def test_empty_sweeps_rejected(self):
        with pytest.raises(ValidationError):
            self._analysis().run([])


class TestMorris:
    def test_identifies_important_dimension(self):
        def func(x):
            return 10.0 * x[0] + 0.1 * x[1] + 0.0 * x[2]

        space = [Real(0, 1, name="big"), Real(0, 1, name="small"), Real(0, 1, name="none")]
        result = MorrisAnalysis(func, space, seed=0).run(n_trajectories=8)
        assert result.ranking()[0] == "big"
        assert result.mu_star[0] > result.mu_star[1] > result.mu_star[2] - 1e-9
        # linear additive model → near-zero sigma
        assert max(result.sigma) < 1e-6

    def test_nonlinearity_raises_sigma(self):
        def func(x):
            return x[0] * x[1]  # pure interaction

        space = [Real(0, 1, name="a"), Real(0, 1, name="b")]
        result = MorrisAnalysis(func, space, seed=1).run(n_trajectories=12)
        assert min(result.sigma) > 0.01

    def test_signed_mu(self):
        def func(x):
            return -3.0 * x[0]

        result = MorrisAnalysis(func, [Real(0, 1, name="a")], seed=0).run(5)
        assert result.mu[0] == pytest.approx(-3.0, rel=0.05)
        assert result.mu_star[0] == pytest.approx(3.0, rel=0.05)

    def test_to_dict(self):
        result = MorrisAnalysis(lambda x: x[0], [Real(0, 1, name="a")], seed=0).run(3)
        d = result.to_dict()
        assert set(d["a"]) == {"mu", "mu_star", "sigma"}

    def test_validation(self):
        with pytest.raises(ValidationError):
            MorrisAnalysis(lambda x: 0.0, [Real(0, 1)], n_levels=3)
        with pytest.raises(ValidationError):
            MorrisAnalysis(lambda x: 0.0, [Real(0, 1)]).run(n_trajectories=1)

"""Tests for repro.utils.stats."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.utils.stats import RunningStats, Summary, confidence_interval, mean_std

finite_floats = st.floats(min_value=-1e6, max_value=1e6, allow_nan=False)


class TestRunningStats:
    def test_empty(self):
        stats = RunningStats()
        assert stats.count == 0
        assert math.isnan(stats.mean)
        assert math.isnan(stats.std)

    def test_single_value(self):
        stats = RunningStats()
        stats.add(3.0)
        assert stats.mean == 3.0
        assert stats.std == 0.0
        assert stats.minimum == stats.maximum == 3.0

    def test_matches_numpy(self, rng):
        values = rng.normal(5.0, 2.0, size=500)
        stats = RunningStats()
        stats.extend(values)
        assert stats.mean == pytest.approx(values.mean())
        assert stats.std == pytest.approx(values.std())
        assert stats.minimum == values.min()
        assert stats.maximum == values.max()

    def test_weighted_mean(self):
        stats = RunningStats()
        stats.add(1.0, weight=1.0)
        stats.add(3.0, weight=3.0)
        assert stats.mean == pytest.approx(2.5)

    def test_rejects_nonpositive_weight(self):
        stats = RunningStats()
        with pytest.raises(ValueError):
            stats.add(1.0, weight=0.0)

    @given(st.lists(finite_floats, min_size=1, max_size=60), st.lists(finite_floats, min_size=1, max_size=60))
    @settings(max_examples=50, deadline=None)
    def test_merge_equals_pooled(self, a, b):
        """Merging two accumulators equals accumulating the concatenation."""
        sa, sb, pooled = RunningStats(), RunningStats(), RunningStats()
        sa.extend(a)
        sb.extend(b)
        pooled.extend(a + b)
        sa.merge(sb)
        assert sa.count == pooled.count
        assert sa.mean == pytest.approx(pooled.mean, rel=1e-9, abs=1e-6)
        assert sa.std == pytest.approx(pooled.std, rel=1e-6, abs=1e-6)

    def test_merge_into_empty(self):
        a, b = RunningStats(), RunningStats()
        b.extend([1.0, 2.0])
        a.merge(b)
        assert a.count == 2
        assert a.mean == pytest.approx(1.5)

    @given(st.lists(finite_floats, min_size=2, max_size=100))
    @settings(max_examples=50, deadline=None)
    def test_variance_nonnegative(self, values):
        stats = RunningStats()
        stats.extend(values)
        assert stats.variance >= -1e-9


class TestSummary:
    def test_str_format(self):
        assert str(Summary(mean=2.657, std=0.0914, count=966)) == "2.657 (±0.0914)"

    def test_relative_difference(self):
        base = Summary(mean=2.657, std=0.1, count=10)
        pre = Summary(mean=2.484, std=0.1, count=10)
        assert base.relative_difference(pre) == pytest.approx(-0.0651, abs=1e-3)

    def test_relative_difference_zero_mean(self):
        with pytest.raises(ZeroDivisionError):
            Summary(mean=0.0, std=0.0, count=1).relative_difference(
                Summary(mean=1.0, std=0.0, count=1)
            )


class TestFunctions:
    def test_mean_std(self):
        summary = mean_std([1.0, 2.0, 3.0])
        assert summary.mean == 2.0
        assert summary.count == 3
        assert summary.minimum == 1.0 and summary.maximum == 3.0

    def test_mean_std_empty(self):
        assert math.isnan(mean_std([]).mean)

    def test_confidence_interval_contains_mean(self, rng):
        values = rng.normal(10.0, 1.0, size=200)
        lo, hi = confidence_interval(values, 0.95)
        assert lo < values.mean() < hi
        assert hi - lo < 1.0

    def test_confidence_interval_needs_two(self):
        with pytest.raises(ValueError):
            confidence_interval([1.0])

"""Tests for the Grid'5000-like testbed simulator."""

import pytest

from repro.errors import ReservationError, ValidationError
from repro.testbed import (
    CLUSTER_SPECS,
    CPUSpec,
    Cluster,
    Deployment,
    GPUSpec,
    Link,
    NICSpec,
    NodeSpec,
    ResourceRequest,
    Site,
    Testbed,
    grid5000,
)


class TestHardware:
    def test_chifflot_matches_paper(self):
        spec = CLUSTER_SPECS["chifflot"]
        assert spec.model == "Dell PowerEdge R740"
        assert spec.total_cores == 24  # 2 sockets x 12 cores
        assert spec.memory_gb == 192.0
        assert spec.nic.rate_gbps == 25.0
        assert spec.gpus[0].model == "Nvidia Tesla V100-PCIE-32GB"
        assert spec.gpus[0].memory_gb == 32.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            CPUSpec("bad", cores=0)
        with pytest.raises(ValidationError):
            GPUSpec("bad", memory_gb=0)
        with pytest.raises(ValidationError):
            NICSpec("bad", rate_gbps=0)
        with pytest.raises(ValidationError):
            NodeSpec("bad", cpus=(), memory_gb=1, storage_gb=1, nic=NICSpec("n", 1))

    def test_describe(self):
        assert "Tesla V100" in CLUSTER_SPECS["chifflot"].describe()

    def test_nic_bytes(self):
        assert NICSpec("n", 8.0).rate_bytes_per_s == 1e9


class TestReservations:
    def test_atomic_reservation(self):
        tb = grid5000()
        free_before = tb.free_node_count()
        with pytest.raises(ReservationError):
            tb.reserve(
                [
                    ResourceRequest("chifflot", 2),
                    ResourceRequest("chiclet", 999),  # infeasible
                ]
            )
        assert tb.free_node_count() == free_before  # nothing leaked

    def test_gpu_requirement(self):
        tb = grid5000()
        with pytest.raises(ReservationError, match="GPU"):
            tb.reserve([ResourceRequest("gros", 1, require_gpu=True)])

    def test_release_via_context_manager(self):
        tb = grid5000()
        with tb.reserve([ResourceRequest("chifflot", 3)]) as res:
            assert tb.free_node_count("chifflot") == 5
            assert res.node_count == 3
        assert tb.free_node_count("chifflot") == 8

    def test_double_release_idempotent(self):
        tb = grid5000()
        res = tb.reserve([ResourceRequest("gros", 2)])
        res.release()
        res.release()
        assert tb.free_node_count("gros") == 124

    def test_unknown_cluster(self):
        tb = grid5000()
        with pytest.raises(ReservationError, match="unknown cluster"):
            tb.reserve([ResourceRequest("nonexistent", 1)])

    def test_node_names_grid5000_style(self):
        tb = grid5000()
        res = tb.reserve([ResourceRequest("chifflot", 1)])
        assert res.all_nodes()[0].name == "chifflot-1.lille"

    def test_paper_42_node_reservation(self):
        tb = grid5000()
        res = tb.reserve(
            [
                ResourceRequest("chifflot", 1, require_gpu=True),
                ResourceRequest("chiclet", 8),
                ResourceRequest("chetemi", 13),
                ResourceRequest("chifflet", 8),
                ResourceRequest("gros", 12),
            ]
        )
        assert res.node_count == 42


class TestNetwork:
    def test_direct_link(self):
        tb = grid5000()
        path = tb.network.path("gros", "chifflot")
        assert path.bandwidth_gbps == 10.0
        assert path.latency_ms == 5.0

    def test_transfer_time(self):
        tb = grid5000()
        path = tb.network.path("chiclet", "chifflot")
        # 0.1 ms latency + 1 MB over 10 Gbps
        expected = 0.1e-3 + 1e6 / (10e9 / 8)
        assert path.transfer_time(1e6) == pytest.approx(expected)

    def test_unknown_endpoints_get_lan_defaults(self):
        tb = grid5000()
        path = tb.network.path("never-seen", "also-unknown")
        assert path.bandwidth_gbps == 10.0

    def test_same_endpoint_is_free(self):
        tb = grid5000()
        path = tb.network.path("gros", "gros")
        assert path.transfer_time(1e9) == 0.0

    def test_multi_hop_latency_adds_bandwidth_bottlenecks(self):
        tb = Testbed("t", [Site("s")])
        net = tb.network
        for n in ("a", "b", "c"):
            net.add_site(n)
        net.add_link(Link("a", "b", latency_ms=1.0, bandwidth_gbps=10.0))
        net.add_link(Link("b", "c", latency_ms=2.0, bandwidth_gbps=1.0))
        path = net.path("a", "c")
        assert path.latency_ms == 3.0
        assert path.bandwidth_gbps == 1.0
        assert path.hops == ("a", "b", "c")

    def test_loss_reduces_goodput(self):
        link = Link("a", "b", latency_ms=0.0, bandwidth_gbps=8.0, loss=0.5)
        tb = Testbed("t", [])
        tb.network.add_link(link)
        path = tb.network.path("a", "b")
        assert path.transfer_time(1e9) == pytest.approx(2.0)

    def test_link_validation(self):
        with pytest.raises(ValidationError):
            Link("a", "b", latency_ms=-1, bandwidth_gbps=1)
        with pytest.raises(ValidationError):
            Link("a", "b", latency_ms=1, bandwidth_gbps=0)
        with pytest.raises(ValidationError):
            Link("a", "b", latency_ms=1, bandwidth_gbps=1, loss=1.0)


class TestDeployment:
    def test_place_and_teardown(self):
        tb = grid5000()
        res = tb.reserve([ResourceRequest("chifflot", 1)])
        node = res.nodes_of("chifflot")[0]
        deployment = Deployment(reservation=res)
        deployment.place("engine", node, cores=40, memory_gb=64, gpus=1)
        assert node.allocated_cores == 40
        assert len(deployment.manifest()) == 1
        deployment.teardown()
        assert node.allocated_cores == 0

    def test_oversubscription_rejected(self):
        tb = grid5000()
        res = tb.reserve([ResourceRequest("gros", 1)])
        node = res.nodes_of("gros")[0]
        deployment = Deployment(reservation=res)
        with pytest.raises(ReservationError, match="cores"):
            deployment.place("x", node, cores=10_000)
        with pytest.raises(ReservationError, match="GPU"):
            deployment.place("x", node, gpus=1)

    def test_foreign_node_rejected(self):
        tb = grid5000()
        res1 = tb.reserve([ResourceRequest("gros", 1)])
        res2 = tb.reserve([ResourceRequest("gros", 1)])
        deployment = Deployment(reservation=res1)
        from repro.errors import DeploymentError

        with pytest.raises(DeploymentError):
            deployment.place("x", res2.nodes_of("gros")[0], cores=1)


    def test_signature_excludes_extra(self):
        tb = grid5000()
        res = tb.reserve([ResourceRequest("chifflot", 1)])
        node = res.nodes_of("chifflot")[0]
        deployment = Deployment(reservation=res)
        deployment.place("engine", node, cores=40, thread_pools={"http": 20})
        before = deployment.signature()
        deployment.reconfigure("engine", thread_pools={"http": 60})
        assert deployment.signature() == before
        assert before == (("engine", node.name, 40, 0.0, 0),)

    def test_reconfigure_merges_extra_in_place(self):
        tb = grid5000()
        res = tb.reserve([ResourceRequest("chifflot", 1)])
        node = res.nodes_of("chifflot")[0]
        deployment = Deployment(reservation=res)
        deployment.place("engine", node, cores=8, thread_pools={"http": 20}, tag="a")
        updated = deployment.reconfigure("engine", thread_pools={"http": 60})
        assert len(updated) == 1
        entry = deployment.manifest()[0]
        assert entry["thread_pools"] == {"http": 60}
        assert entry["tag"] == "a"  # untouched extras survive the merge
        assert node.allocated_cores == 8  # no re-place, no re-allocation

    def test_reconfigure_unknown_service_rejected(self):
        from repro.errors import DeploymentError

        tb = grid5000()
        res = tb.reserve([ResourceRequest("gros", 1)])
        deployment = Deployment(reservation=res)
        with pytest.raises(DeploymentError, match="no placements"):
            deployment.reconfigure("ghost", thread_pools={})



class TestClusterSite:
    def test_duplicate_cluster_rejected(self):
        site = Site("lille")
        spec = CLUSTER_SPECS["gros"]
        site.add_cluster(Cluster("c1", "lille", spec, 2))
        with pytest.raises(ValidationError):
            site.add_cluster(Cluster("c1", "lille", spec, 2))

    def test_cluster_site_mismatch(self):
        site = Site("lille")
        with pytest.raises(ValidationError):
            site.add_cluster(Cluster("c1", "nancy", CLUSTER_SPECS["gros"], 1))

    def test_total_nodes(self):
        tb = grid5000()
        assert tb.total_nodes == 8 + 8 + 15 + 8 + 124

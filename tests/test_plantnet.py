"""Tests for the Pl@ntNet application layer."""

import pytest

from repro.engine import ThreadPoolConfig
from repro.plantnet import (
    BASELINE,
    PRELIMINARY_OPTIMUM,
    REFINED_OPTIMUM,
    PlantNetOptimization,
    PlantNetScenario,
    UserGrowthModel,
    paper_problem,
    paper_search_space,
)
from repro.plantnet.configs import MAX_TOLERATED_RESPONSE_TIME, USER_RESPONSE_METRIC


class TestConfigs:
    def test_table_iv_configs(self):
        assert BASELINE == ThreadPoolConfig(40, 40, 7, 40)
        assert PRELIMINARY_OPTIMUM == ThreadPoolConfig(54, 54, 7, 53)
        assert REFINED_OPTIMUM == ThreadPoolConfig(54, 54, 6, 53)

    def test_search_space_eq2(self):
        space = paper_search_space()
        assert space.names == ["http", "download", "simsearch", "extract"]
        http = space.dimensions[0]
        extract = space.dimensions[3]
        assert (http.low, http.high) == (20, 60)
        assert (extract.low, extract.high) == (3, 9)

    def test_problem_objective(self):
        problem = paper_problem()
        assert problem.primary_metric == USER_RESPONSE_METRIC
        assert problem.primary_mode == "min"
        assert not problem.constraints

    def test_problem_with_tolerance(self):
        problem = paper_problem(with_tolerance_constraint=True)
        assert str(problem.constraints[0]) == f"user_resp_time <= {MAX_TOLERATED_RESPONSE_TIME}"


class TestScenario:
    @pytest.fixture(scope="class")
    def scenario(self):
        return PlantNetScenario(duration=200.0, warmup=40.0, repetitions=2, base_seed=3)

    def test_deployment_manifest_covers_42_nodes(self, scenario):
        result = scenario.run(BASELINE, 80)
        nodes = {entry["node"] for entry in result.deployment_manifest}
        assert len(nodes) == 42
        engine_nodes = [
            e for e in result.deployment_manifest if e["service"] == "plantnet-engine"
        ]
        assert len(engine_nodes) == 1
        assert engine_nodes[0]["node"].startswith("chifflot")
        assert engine_nodes[0]["gpus"] == 1

    def test_clients_sum_to_population(self, scenario):
        result = scenario.run(BASELINE, 80)
        clients = sum(
            e["clients"]
            for e in result.deployment_manifest
            if e["service"] == "plantnet-clients"
        )
        assert clients == 80

    def test_repetitions_pooled(self, scenario):
        result = scenario.run(BASELINE, 40)
        assert len(result.runs) == 2
        assert result.aggregate.repetitions == 2

    def test_metrics_flat_mapping(self, scenario):
        metrics = scenario.evaluate(BASELINE.to_dict(), 40, seed=1)
        assert USER_RESPONSE_METRIC in metrics
        assert "busy_extract" in metrics
        assert "task_simsearch" in metrics
        # extensions: tail latency and energy are exposed to the optimizer,
        # enabling the paper's Sec. II-B energy/performance objectives
        assert metrics["user_resp_time_p95"] >= metrics[USER_RESPONSE_METRIC]
        assert metrics["energy_wh"] > 0

    def test_seed_controls_result(self, scenario):
        a = scenario.evaluate(BASELINE.to_dict(), 40, seed=10)
        b = scenario.evaluate(BASELINE.to_dict(), 40, seed=10)
        c = scenario.evaluate(BASELINE.to_dict(), 40, seed=11)
        assert a[USER_RESPONSE_METRIC] == b[USER_RESPONSE_METRIC]
        assert a[USER_RESPONSE_METRIC] != c[USER_RESPONSE_METRIC]

    def test_without_testbed(self):
        scenario = PlantNetScenario(duration=150.0, use_testbed=False, base_seed=0)
        result = scenario.run(BASELINE, 40)
        assert result.deployment_manifest == []
        assert result.user_response_time.mean > 0

    def test_definition_reserves_paper_nodes(self, scenario):
        definition = scenario.definition(BASELINE, 80)
        total = sum(r.nodes for r in definition.resource_requests())
        assert total == 42



class TestWarmReuse:
    def test_cold_and_warm_results_identical(self):
        cold = PlantNetScenario(
            duration=150.0, warmup=30.0, base_seed=5, warm_reuse=False
        )
        with PlantNetScenario(
            duration=150.0, warmup=30.0, base_seed=5, warm_reuse=True
        ) as warm:
            for config in (BASELINE, ThreadPoolConfig(60, 40, 5, 40)):
                a = cold.evaluate(config.to_dict(), 40)
                b = warm.evaluate(config.to_dict(), 40)
                assert a == b

    def test_deployment_reused_across_trials(self):
        with PlantNetScenario(duration=150.0, base_seed=1, warm_reuse=True) as sc:
            sc.evaluate(BASELINE.to_dict(), 40)
            first = sc._warm[40]["deployment"]
            sc.evaluate(ThreadPoolConfig(60, 40, 5, 40).to_dict(), 40)
            assert sc._warm[40]["deployment"] is first

    def test_manifest_tracks_reconfigured_pools(self):
        with PlantNetScenario(duration=150.0, base_seed=1, warm_reuse=True) as sc:
            sc.run(BASELINE, 40)
            new = ThreadPoolConfig(60, 40, 5, 40)
            result = sc.run(new, 40)
            engine = [
                e for e in result.deployment_manifest
                if e["service"] == "plantnet-engine"
            ][0]
            assert engine["thread_pools"] == new.to_dict()

    def test_close_releases_everything(self):
        sc = PlantNetScenario(duration=150.0, base_seed=1, warm_reuse=True)
        sc.evaluate(BASELINE.to_dict(), 40)
        entry = sc._warm[40]
        sc.close()
        assert sc._warm == {}
        assert all(
            node.allocated_cores == 0
            for node in entry["deployment"]._nodes_by_name.values()
        )

class TestPlantNetOptimization:
    def test_listing1_campaign(self, tmp_path):
        opt = PlantNetOptimization(
            num_samples=8,
            n_initial_points=5,
            duration=150.0,
            warmup=30.0,
            workdir=tmp_path,
            seed=0,
        )
        summary = opt.run()
        assert summary.n_evaluations == 8
        cfg = summary.best_configuration
        assert 20 <= cfg["http"] <= 60
        assert 3 <= cfg["extract"] <= 9
        assert summary.algorithm["base_estimator"] == "ET"
        assert summary.sampling["generator"] == "lhs"
        # archive holds the evaluations
        assert len(opt.archive.load_evaluations()) == 8


class TestUserGrowth:
    def test_spring_peaks_visible(self):
        model = UserGrowthModel()
        assert model.spring_peak_ratio() > 2.0

    def test_exponential_trend(self):
        model = UserGrowthModel(noise_cv=0.0)
        y0 = model.expected_rate(30.0)
        y1 = model.expected_rate(30.0 + 365.25)
        assert y1 / y0 == pytest.approx(2.718281828 ** model.yearly_growth, rel=1e-6)

    def test_generate_deterministic(self):
        model = UserGrowthModel()
        a = model.generate(100, seed=1)
        b = model.generate(100, seed=1)
        assert list(a.values) == list(b.values)

    def test_capacity_bridge_grows(self):
        model = UserGrowthModel()
        early = model.expected_simultaneous_requests(200.0)
        later = model.expected_simultaneous_requests(600.0)
        assert later > early > 0

    def test_validation(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            UserGrowthModel(base_rate=0)
        with pytest.raises(ValidationError):
            UserGrowthModel().generate(0)

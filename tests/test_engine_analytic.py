"""Tests for the analytic engine model and its agreement with the DES."""

import pytest

from repro.engine import (
    AnalyticEngineModel,
    BASELINE_CONFIG,
    ThreadPoolConfig,
    simulate_engine,
)
from repro.engine.calibration import PRELIMINARY_OPTIMUM, REFINED_OPTIMUM
from repro.errors import ValidationError


@pytest.fixture(scope="module")
def model():
    return AnalyticEngineModel()


class TestFixedPoint:
    def test_converges(self, model):
        result = model.evaluate(BASELINE_CONFIG, 80)
        assert result.converged
        assert result.throughput > 0

    def test_littles_law_exact(self, model):
        r = model.evaluate(BASELINE_CONFIG, 80)
        assert r.throughput * r.user_response_time == pytest.approx(80.0)

    def test_monotone_in_population(self, model):
        values = [model.evaluate(BASELINE_CONFIG, R).user_response_time for R in (40, 80, 120, 160)]
        assert values == sorted(values)

    def test_smooth_in_http(self, model):
        """No fixed-point jumps across the H sweep (regression guard)."""
        values = [
            model.evaluate(ThreadPoolConfig(h, h, 7, min(60, h)), 80).user_response_time
            for h in range(40, 61, 2)
        ]
        diffs = [b - a for a, b in zip(values, values[1:])]
        # steep near H=40 but smooth: no jumps, no oscillation
        assert all(abs(d) < 0.1 for d in diffs), values
        assert all(d <= 1e-9 for d in diffs), values  # monotone decreasing here

    def test_underload_matches_service_time(self, model):
        r = model.evaluate(BASELINE_CONFIG, 10)
        assert r.user_response_time == pytest.approx(r.service_time, rel=1e-6)

    def test_invalid_population(self, model):
        with pytest.raises(ValidationError):
            model.evaluate(BASELINE_CONFIG, 0)


class TestPaperShape:
    def test_preliminary_beats_baseline(self, model):
        base = model.evaluate(BASELINE_CONFIG, 80).user_response_time
        pre = model.evaluate(PRELIMINARY_OPTIMUM, 80).user_response_time
        gain = 1 - pre / base
        assert 0.03 <= gain <= 0.12  # paper: 6.9 %

    def test_refined_at_least_as_good(self, model):
        pre = model.evaluate(PRELIMINARY_OPTIMUM, 80).user_response_time
        ref = model.evaluate(REFINED_OPTIMUM, 80).user_response_time
        assert ref <= pre * 1.002

    def test_extract_oat_minimum_at_six(self, model):
        curve = {
            e: model.evaluate(PRELIMINARY_OPTIMUM.replace(extract=e), 80).user_response_time
            for e in (3, 4, 5, 6, 7, 8, 9)
        }
        assert min(curve, key=curve.get) in (6, 7)
        assert curve[6] <= curve[7]
        assert curve[5] > curve[6]
        assert curve[9] > curve[7]
        assert curve[3] > curve[4] > curve[5]

    def test_cpu_saturates_with_large_extract_pool(self, model):
        cpu = {
            e: model.evaluate(PRELIMINARY_OPTIMUM.replace(extract=e), 80).cpu_usage
            for e in (5, 7, 9)
        }
        assert cpu[5] < cpu[9]
        assert cpu[9] >= 0.97


class TestDesAgreement:
    @pytest.mark.parametrize("config", [BASELINE_CONFIG, PRELIMINARY_OPTIMUM, REFINED_OPTIMUM])
    def test_response_within_ten_percent(self, model, config):
        analytic = model.evaluate(config, 80).user_response_time
        des = simulate_engine(config, 80, duration=300.0, warmup=60.0, seed=11)
        assert des.user_response_time.mean == pytest.approx(analytic, rel=0.10)

    def test_ranking_preserved(self, model):
        configs = [BASELINE_CONFIG, PRELIMINARY_OPTIMUM, ThreadPoolConfig(25, 25, 4, 25)]
        analytic = [model.evaluate(c, 80).user_response_time for c in configs]
        des = [
            simulate_engine(c, 80, duration=250.0, warmup=50.0, seed=13).user_response_time.mean
            for c in configs
        ]
        analytic_order = sorted(range(3), key=lambda i: analytic[i])
        des_order = sorted(range(3), key=lambda i: des[i])
        assert analytic_order == des_order


class TestSpeed:
    def test_analytic_much_faster_than_des(self, model):
        import time

        t0 = time.perf_counter()
        for _ in range(20):
            model.evaluate(BASELINE_CONFIG, 80)
        analytic_time = time.perf_counter() - t0

        t0 = time.perf_counter()
        simulate_engine(BASELINE_CONFIG, 80, duration=200.0, warmup=40.0, seed=1)
        des_time = time.perf_counter() - t0
        assert analytic_time / 20 < des_time / 10  # conservatively ≥10×


class TestSaturationFlag:
    def test_sakasegawa_rejects_missing_servers(self):
        from repro.engine.analytic import _sakasegawa_wait

        with pytest.raises(ValidationError, match="servers"):
            _sakasegawa_wait(1.0, 0, 0.5)

    def test_sakasegawa_finite_near_saturation(self):
        from repro.engine.analytic import _sakasegawa_wait

        wait = _sakasegawa_wait(1.0, 4, 0.99999)
        assert wait > 0 and pytest.approx(wait) != float("inf")

    def test_light_load_not_saturated(self, model):
        assert model.evaluate(BASELINE_CONFIG, 10).saturated is False

    def test_cpu_overcommit_saturates(self, model):
        # an oversized extract pool pins CPU demand at the node's cores
        result = model.evaluate(ThreadPoolConfig(100, 100, 30, 100), 100)
        assert result.saturated is True
        assert result.cpu_usage == 1.0


class TestOpenLoopModel:
    def test_capacity_positive_and_cached(self, model):
        cap = model.capacity(BASELINE_CONFIG)
        assert cap > 0
        assert model.capacity(BASELINE_CONFIG) == cap
        assert BASELINE_CONFIG in model._capacity_cache

    def test_stable_epoch_serves_offered_rate(self, model):
        cap = model.capacity(BASELINE_CONFIG)
        result = model.evaluate_open(BASELINE_CONFIG, cap * 0.5)
        assert result.throughput == pytest.approx(cap * 0.5)
        assert result.backlog == 0.0
        assert result.saturated is False
        assert result.response_time >= result.service_time
        assert result.response_p95 > result.response_time

    def test_overload_accumulates_backlog(self, model):
        cap = model.capacity(BASELINE_CONFIG)
        result = model.evaluate_open(BASELINE_CONFIG, cap * 1.5, dt=60.0)
        assert result.throughput == pytest.approx(cap)
        assert result.backlog == pytest.approx(cap * 0.5 * 60.0)
        assert result.saturated is True

    def test_backlog_drains_when_load_drops(self, model):
        cap = model.capacity(BASELINE_CONFIG)
        overload = model.evaluate_open(BASELINE_CONFIG, cap * 1.2, dt=60.0)
        recovery = model.evaluate_open(
            BASELINE_CONFIG, cap * 0.3, backlog=overload.backlog, dt=60.0
        )
        assert recovery.backlog < overload.backlog
        # drain delay shows up in the response time
        calm = model.evaluate_open(BASELINE_CONFIG, cap * 0.3, dt=60.0)
        assert recovery.response_time > calm.response_time

    def test_zero_rate_epoch_is_idle(self, model):
        result = model.evaluate_open(BASELINE_CONFIG, 0.0, dt=60.0)
        assert result.throughput == 0.0
        assert result.backlog == 0.0
        assert result.response_time > 0

    def test_validation(self, model):
        with pytest.raises(ValidationError):
            model.evaluate_open(BASELINE_CONFIG, float("nan"))
        with pytest.raises(ValidationError):
            model.evaluate_open(BASELINE_CONFIG, -1.0)
        with pytest.raises(ValidationError):
            model.evaluate_open(BASELINE_CONFIG, 1.0, backlog=-1.0)
        with pytest.raises(ValidationError):
            model.evaluate_open(BASELINE_CONFIG, 1.0, dt=0.0)


class TestEvaluateSchedule:
    def test_epoch_grid_and_breakpoints(self):
        from repro.engine import ArrivalSchedule
        from repro.engine.analytic import iter_epochs

        sched = ArrivalSchedule.piecewise([(0.0, 2.0), (90.0, 5.0)])
        epochs = iter_epochs(sched, 200.0, 60.0)
        assert epochs == [
            (0.0, 60.0, 2.0),
            (60.0, 90.0, 2.0),
            (90.0, 150.0, 5.0),
            (150.0, 200.0, 5.0),
        ]

    def test_throughput_tracks_rate_when_stable(self, model):
        from repro.engine import ArrivalSchedule

        sched = ArrivalSchedule.diurnal(4.0, 12.0, period=3600.0)
        steps = model.evaluate_schedule(BASELINE_CONFIG, sched, 3600.0, epoch=300.0)
        assert len(steps) > 0
        for step in steps:
            assert step.throughput == pytest.approx(step.arrival_rate)
            assert step.backlog == 0.0

    def test_overload_epochs_carry_backlog(self, model):
        from repro.engine import ArrivalSchedule

        cap = model.capacity(BASELINE_CONFIG)
        sched = ArrivalSchedule.piecewise(
            [(0.0, cap * 0.5), (300.0, cap * 2.0), (600.0, cap * 0.5)]
        )
        steps = model.evaluate_schedule(BASELINE_CONFIG, sched, 900.0, epoch=300.0)
        assert steps[1].saturated and steps[1].backlog > 0
        # recovery epoch still works through the inherited backlog
        assert steps[2].response_time > steps[0].response_time

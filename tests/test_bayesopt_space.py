"""Tests for search-space dimensions and transforms."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bayesopt import Categorical, Integer, Real, Space
from repro.errors import ValidationError


class TestReal:
    def test_roundtrip(self):
        dim = Real(-3.0, 5.0)
        for v in (-3.0, 0.0, 5.0, 1.234):
            assert dim.from_unit(dim.to_unit(v)) == pytest.approx(v)

    def test_log_uniform(self):
        dim = Real(1e-3, 1e3, prior="log-uniform")
        assert dim.from_unit(0.5) == pytest.approx(1.0)
        assert dim.to_unit(1.0) == pytest.approx(0.5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            Real(2.0, 1.0)
        with pytest.raises(ValidationError):
            Real(-1.0, 1.0, prior="log-uniform")
        with pytest.raises(ValidationError):
            Real(0.0, 1.0, prior="mystery")

    @given(st.floats(0.0, 1.0))
    @settings(max_examples=50, deadline=None)
    def test_from_unit_in_bounds(self, u):
        dim = Real(2.0, 7.0)
        assert 2.0 <= dim.from_unit(u) <= 7.0


class TestInteger:
    def test_inclusive_bounds(self):
        dim = Integer(3, 9)
        values = {dim.from_unit(u) for u in np.linspace(0, 0.999999, 500)}
        assert values == set(range(3, 10))

    @given(st.integers(3, 9))
    @settings(max_examples=20, deadline=None)
    def test_roundtrip(self, v):
        dim = Integer(3, 9)
        assert dim.from_unit(dim.to_unit(v)) == v

    def test_equal_slices(self):
        """Each integer owns an equal share of the unit interval."""
        dim = Integer(0, 3)
        us = np.linspace(0, 0.9999999, 40000)
        values = np.array([dim.from_unit(u) for u in us])
        _, counts = np.unique(values, return_counts=True)
        assert counts.max() - counts.min() <= 2

    def test_contains(self):
        dim = Integer(1, 5)
        assert dim.contains(3)
        assert not dim.contains(6)
        assert not dim.contains(2.5)

    def test_validation(self):
        with pytest.raises(ValidationError):
            Integer(5, 3)


class TestCategorical:
    def test_roundtrip(self):
        dim = Categorical(["a", "b", "c"])
        for c in "abc":
            assert dim.from_unit(dim.to_unit(c)) == c

    def test_unknown_category(self):
        dim = Categorical(["a", "b"])
        with pytest.raises(ValidationError):
            dim.to_unit("z")

    def test_validation(self):
        with pytest.raises(ValidationError):
            Categorical(["only-one"])
        with pytest.raises(ValidationError):
            Categorical(["x", "x"])


class TestSpace:
    def _space(self):
        return Space([Integer(20, 60, name="http"), Real(0.0, 1.0, name="frac")])

    def test_names_auto_assigned(self):
        space = Space([Integer(0, 1), Integer(0, 1)])
        assert space.names == ["x0", "x1"]

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValidationError):
            Space([Integer(0, 1, name="a"), Real(0, 1, name="a")])

    def test_transform_roundtrip(self):
        space = self._space()
        points = [[40, 0.5], [20, 0.0], [60, 0.99]]
        unit = space.transform(points)
        back = space.inverse_transform(unit)
        for original, restored in zip(points, back):
            assert restored[0] == original[0]
            assert restored[1] == pytest.approx(original[1])

    def test_contains(self):
        space = self._space()
        assert space.contains([30, 0.5])
        assert not space.contains([10, 0.5])
        assert not space.contains([30])

    def test_to_dict(self):
        space = self._space()
        assert space.to_dict([30, 0.25]) == {"http": 30, "frac": 0.25}

    def test_wrong_arity_rejected(self):
        with pytest.raises(ValidationError):
            self._space().transform([[1, 2, 3]])

    def test_empty_space_rejected(self):
        with pytest.raises(ValidationError):
            Space([])


class TestVectorizedTransforms:
    """Batched transform/inverse_transform must agree with the scalar maps."""

    def _space(self):
        return Space([
            Real(-2.0, 6.0, name="r"),
            Real(1e-2, 1e2, prior="log-uniform", name="lg"),
            Integer(3, 17, name="i"),
            Categorical(["a", "b", "c"], name="c"),
        ])

    def test_transform_matches_scalar(self):
        space = self._space()
        points = [[-2.0, 0.01, 3, "a"], [6.0, 100.0, 17, "c"], [1.5, 1.0, 9, "b"]]
        unit = space.transform(points)
        assert unit.shape == (3, 4)
        for i, point in enumerate(points):
            for j, (dim, value) in enumerate(zip(space.dimensions, point)):
                assert unit[i, j] == pytest.approx(dim.to_unit(value))

    def test_inverse_matches_scalar(self):
        space = self._space()
        rng = np.random.default_rng(0)
        unit = rng.random((32, 4))
        batch = space.inverse_transform(unit)
        for row, point in zip(unit, batch):
            expected = [dim.from_unit(u) for dim, u in zip(space.dimensions, row)]
            # Floats may differ by an ulp between np.exp and math.exp.
            assert point[0] == pytest.approx(expected[0], rel=1e-12)
            assert point[1] == pytest.approx(expected[1], rel=1e-12)
            assert point[2:] == expected[2:]

    def test_inverse_clips_out_of_cube(self):
        space = self._space()
        batch = space.inverse_transform(np.array([[-0.5, 1.5, 1.0, -0.1]]))
        assert batch[0][0] == -2.0
        assert batch[0][1] == pytest.approx(100.0)
        assert batch[0][2] == 17
        assert batch[0][3] == "a"

    def test_inverse_rejects_wrong_width(self):
        with pytest.raises(ValidationError):
            self._space().inverse_transform(np.zeros((2, 3)))

    def test_integer_types_are_native(self):
        space = Space([Integer(0, 5, name="k")])
        batch = space.inverse_transform(np.array([[0.0], [0.999]]))
        assert [type(row[0]) for row in batch] == [int, int]
        assert [row[0] for row in batch] == [0, 5]

    def test_categorical_transform_rejects_unknown(self):
        space = Space([Categorical(["x", "y"], name="c")])
        with pytest.raises(ValidationError):
            space.transform([["z"]])

"""Tests for the fast ask/tell hot path through the search layer.

Covers batched suggestions (SurrogateSearch / ConcurrencyLimiter /
TrialRunner slot-filling), the structured worker error path, and the cost
profile picking up the new suggest/tell latencies.
"""

import sys

import pytest

from repro.bayesopt import Integer, Optimizer, Real, Space
from repro.search import run
from repro.search.algos import ConcurrencyLimiter, GridSearch, RandomSearch, SurrogateSearch
from repro.search.runner import TrialRunner, _attempt_once
from repro.search.trial import TrialStatus


def _space():
    return Space([Real(0.0, 1.0, name="a"), Real(0.0, 1.0, name="b")])


def _objective(config):
    return (config["a"] - 0.25) ** 2 + (config["b"] - 0.5) ** 2


class TestSuggestBatch:
    def test_surrogate_search_batch_shares_one_ask(self):
        space = _space()
        search = SurrogateSearch(space, n_initial_points=2, random_state=0,
                                 acq_n_candidates=100)
        configs = search.suggest_batch([f"t{i}" for i in range(5)])
        assert len(configs) == 5
        assert len(search.optimizer._pending) == 5
        keys = {tuple(round(c[n], 9) for n in space.names) for c in configs}
        assert len(keys) == 5

    def test_prefetch_queue_feeds_single_suggests(self):
        space = _space()
        search = SurrogateSearch(space, batch_size=4, n_initial_points=2,
                                 random_state=0, acq_n_candidates=100)
        first = search.suggest("t0")
        assert first is not None
        assert len(search._prefetched) == 3
        assert len(search.optimizer._pending) == 4
        for i in range(3):
            assert search.suggest(f"t{i + 1}") is not None
        assert not search._prefetched

    def test_default_batch_falls_back_to_suggest_loop(self):
        space = _space()
        search = RandomSearch(space, seed=0)
        configs = search.suggest_batch(["a", "b", "c"])
        assert len(configs) == 3

    def test_grid_batch_stops_at_exhaustion(self):
        space = Space([Integer(0, 4, name="k"), Real(0.0, 1.0, name="x")])
        search = GridSearch(space, {"k": [0, 1], "x": [0.5]})
        configs = search.suggest_batch([f"t{i}" for i in range(5)])
        assert len(configs) == 2
        assert search.suggest_batch(["t9"]) == []

    def test_limiter_caps_batches_and_frees_on_complete(self):
        space = _space()
        limited = ConcurrencyLimiter(
            SurrogateSearch(space, n_initial_points=2, random_state=0,
                            acq_n_candidates=100),
            max_concurrent=3,
        )
        configs = limited.suggest_batch([f"t{i}" for i in range(6)])
        assert len(configs) == 3
        assert limited.suggest_batch(["t6"]) == []
        limited.on_trial_complete("t0", configs[0], 1.0)
        assert len(limited.suggest_batch(["t7", "t8"])) == 1
        limited.on_trial_complete("t1", configs[1], 1.0)
        limited.on_trial_complete("t2", configs[2], 1.0)
        assert len(limited.suggest_batch(["t9", "t10"])) == 2


class TestRunnerBatching:
    def test_thread_executor_fills_slots_from_one_batch(self):
        space = _space()
        analysis = run(
            _objective,
            space=space,
            metric="loss",
            num_samples=12,
            executor="thread",
            max_workers=4,
            seed=0,
            name="batched",
        )
        assert len(analysis.trials) == 12
        assert all(t.status is TrialStatus.TERMINATED for t in analysis.trials)
        assert analysis.best_result < 0.5
        assert all("suggest_s" in t.cost for t in analysis.trials)

    def test_batched_campaign_with_limiter_completes(self):
        space = _space()
        search = ConcurrencyLimiter(
            SurrogateSearch(space, n_initial_points=3, random_state=1,
                            acq_n_candidates=100),
            max_concurrent=2,
        )
        runner = TrialRunner(
            _objective, search, metric="loss", num_samples=8,
            executor="thread", max_workers=4, name="limited",
        )
        analysis = runner.run()
        assert len(analysis.trials) == 8
        assert not search._outstanding

    def test_sync_runner_with_prefetching_search(self):
        space = _space()
        search = SurrogateSearch(space, batch_size=4, n_initial_points=3,
                                 random_state=0, acq_n_candidates=100)
        analysis = run(
            _objective, space=space, metric="loss", num_samples=10,
            search_alg=search, name="prefetch",
        )
        assert len(analysis.trials) == 10
        assert analysis.best_result < 0.5

    def test_run_facade_batch_knobs(self):
        analysis = run(
            _objective, space=_space(), metric="loss", num_samples=10,
            executor="thread", max_workers=4, seed=2, batch_size=4,
            refit_every=4, name="knobs",
        )
        assert len(analysis.trials) == 10

    def test_cost_profile_reflects_suggest_and_tell(self):
        analysis = run(
            _objective, space=_space(), metric="loss", num_samples=8,
            seed=0, name="costs",
        )
        profile = analysis.cost_profile()
        assert profile.trials == 8
        assert profile.suggest_s > 0.0
        assert profile.tell_s > 0.0
        assert profile.evaluate_s >= 0.0

    def test_cost_profile_after_resume_and_batched_tells(self):
        """Hedge gains and per-trial costs survive a resume-style replay."""
        space = _space()
        search = SurrogateSearch(space, n_initial_points=2, random_state=0,
                                 acq_n_candidates=100)
        # Replay two finished trials into the searcher (resume semantics:
        # told but never suggested) — gains must stay untouched.
        search.on_trial_complete("old_0", {"a": 0.1, "b": 0.2}, 0.9)
        search.on_trial_complete("old_1", {"a": 0.9, "b": 0.8}, 0.7)
        assert float(search.optimizer._gains.sum()) == 0.0
        analysis = run(
            _objective, space=space, metric="loss", num_samples=6,
            search_alg=search, name="resumed",
        )
        assert len(analysis.trials) == 6
        assert len(search.optimizer.yi) == 8  # 2 replayed + 6 fresh
        assert analysis.cost_profile().suggest_s > 0.0


def _raises_system_exit(config):
    sys.exit(3)


def _raises_value_error(config):
    raise ValueError("boom")


class TestAttemptOnce:
    def test_base_exception_becomes_structured_error(self):
        status, payload, _injected = _attempt_once(_raises_system_exit, {}, None)
        assert status == "error"
        assert "SystemExit" in payload

    def test_base_exception_in_timeout_thread(self):
        """Regression: SystemExit in the worker thread left the box empty
        and crashed the pool worker with IndexError."""
        status, payload, _injected = _attempt_once(_raises_system_exit, {}, 5.0)
        assert status == "error"
        assert "SystemExit" in payload

    def test_ordinary_error_with_timeout(self):
        status, payload, _injected = _attempt_once(_raises_value_error, {}, 5.0)
        assert status == "error"
        assert "ValueError: boom" in payload

    def test_ok_path_with_timeout(self):
        status, payload, injected = _attempt_once(lambda c: {"loss": 1.0}, {}, 5.0)
        assert status == "ok"
        assert payload == {"loss": 1.0}
        assert injected is False

    def test_trial_with_system_exit_is_an_error_not_a_crash(self):
        analysis = run(
            _raises_system_exit, space=_space(), metric="loss",
            num_samples=2, executor="process", max_workers=2, seed=0,
            name="sysexit",
        )
        assert all(t.status is TrialStatus.ERROR for t in analysis.trials)
        assert all("SystemExit" in (t.error or "") for t in analysis.trials)


class TestBatchKnobValidation:
    def test_bad_batch_size_rejected(self):
        from repro.errors import ValidationError

        with pytest.raises(ValidationError):
            SurrogateSearch(_space(), batch_size=0)

    def test_prebuilt_optimizer_still_works_with_batches(self):
        space = _space()
        opt = Optimizer(space, n_initial_points=2, random_state=0,
                        acq_n_candidates=100, refit_every=4)
        search = SurrogateSearch(space, optimizer=opt)
        configs = search.suggest_batch(["a", "b", "c"])
        assert len(configs) == 3

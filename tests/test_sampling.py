"""Tests for the initial-design samplers."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.sampling import (
    GridSampler,
    HaltonSampler,
    LatinHypercubeSampler,
    RandomSampler,
    SobolSampler,
    get_sampler,
)
from repro.sampling.halton import first_primes, van_der_corput

ALL_SAMPLERS = ["random", "lhs", "halton", "sobol", "grid"]


class TestCommonContract:
    @pytest.mark.parametrize("name", ALL_SAMPLERS)
    @given(n=st.integers(1, 40), d=st.integers(1, 6), seed=st.integers(0, 1000))
    @settings(max_examples=15, deadline=None)
    def test_shape_and_bounds(self, name, n, d, seed):
        sampler = get_sampler(name)
        pts = sampler.generate(n, d, np.random.default_rng(seed))
        assert pts.shape == (n, d)
        assert (pts >= 0.0).all() and (pts < 1.0).all()

    @pytest.mark.parametrize("name", ALL_SAMPLERS)
    def test_invalid_args(self, name):
        sampler = get_sampler(name)
        rng = np.random.default_rng(0)
        with pytest.raises(ValidationError):
            sampler.generate(0, 2, rng)
        with pytest.raises(ValidationError):
            sampler.generate(2, 0, rng)

    def test_unknown_sampler(self):
        with pytest.raises(ValidationError):
            get_sampler("quasi-magic")


class TestLHS:
    def test_stratification(self):
        """Exactly one point per 1/n stratum in every dimension."""
        n = 20
        pts = LatinHypercubeSampler().generate(n, 3, np.random.default_rng(0))
        for d in range(3):
            strata = np.floor(pts[:, d] * n).astype(int)
            assert sorted(strata) == list(range(n))

    def test_centered_variant(self):
        n = 10
        pts = LatinHypercubeSampler(centered=True).generate(n, 2, np.random.default_rng(0))
        fractional = (pts * n) % 1.0
        assert np.allclose(fractional, 0.5)


class TestHalton:
    def test_first_primes(self):
        assert first_primes(6) == [2, 3, 5, 7, 11, 13]

    def test_van_der_corput_base2(self):
        seq = van_der_corput(4, 2)
        assert np.allclose(seq, [0.5, 0.25, 0.75, 0.125])

    def test_base_validated(self):
        with pytest.raises(ValidationError):
            van_der_corput(4, 1)

    def test_unscrambled_deterministic(self):
        a = HaltonSampler(scramble=False).generate(16, 2, np.random.default_rng(0))
        b = HaltonSampler(scramble=False).generate(16, 2, np.random.default_rng(99))
        assert np.array_equal(a, b)


class TestSobol:
    def test_canonical_first_points(self):
        pts = SobolSampler(scramble=False).generate(4, 2, np.random.default_rng(0))
        assert np.allclose(pts[:, 0], [0.0, 0.5, 0.75, 0.25])
        assert np.allclose(pts[:, 1], [0.0, 0.5, 0.25, 0.75])

    def test_dimension_limit(self):
        with pytest.raises(ValidationError):
            SobolSampler().generate(4, 17, np.random.default_rng(0))

    def test_scramble_changes_points_preserves_gaps(self):
        plain = SobolSampler(scramble=False).generate(64, 3, np.random.default_rng(0))
        scrambled = SobolSampler(scramble=True).generate(64, 3, np.random.default_rng(0))
        assert not np.allclose(plain, scrambled)

    def test_low_discrepancy_beats_random(self):
        """Sobol fills [0,1]^2 more evenly than i.i.d. uniform (L2 star
        discrepancy proxy: max empty-box deviation on a grid)."""

        def grid_deviation(pts):
            worst = 0.0
            for gx in np.linspace(0.2, 1.0, 5):
                for gy in np.linspace(0.2, 1.0, 5):
                    frac = np.mean((pts[:, 0] < gx) & (pts[:, 1] < gy))
                    worst = max(worst, abs(frac - gx * gy))
            return worst

        rng = np.random.default_rng(3)
        sobol = SobolSampler(scramble=False).generate(256, 2, rng)
        random = RandomSampler().generate(256, 2, np.random.default_rng(3))
        assert grid_deviation(sobol) < grid_deviation(random)


class TestGrid:
    def test_exact_factorial_when_possible(self):
        pts = GridSampler().generate(9, 2, np.random.default_rng(0))
        assert pts.shape == (9, 2)
        # 3 levels per dimension at stratum centres
        levels = np.unique(np.round(pts[:, 0], 6))
        assert len(levels) == 3

    def test_truncates_to_requested(self):
        pts = GridSampler().generate(7, 2, np.random.default_rng(0))
        assert pts.shape == (7, 2)

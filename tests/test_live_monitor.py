"""Tests for the live telemetry plane (``repro.observability.live``).

Covers the embedded HTTP monitor end to end: serve-spec parsing and the
``OptimizerConf.serve`` field, the status board, store-derived worker
liveness, concurrent ``/metrics`` + ``/status`` scrapes during an active
campaign, SSE delivery of injected watchdog alerts, slow-consumer drop
accounting, authenticated ``POST /telemetry`` ingest with ``runner_id`` /
``pid`` attribution, the ``--format json`` CLI surfaces, the ``monitor``
CLI, and a subprocess worker streaming telemetry mid-campaign via
``--push-telemetry``.
"""

import json
import os
import subprocess
import sys
import threading
import time
import urllib.error
import urllib.request
from pathlib import Path

import pytest

import repro
from repro import observability as obs
from repro.cli import main
from repro.errors import ValidationError
from repro.observability.digest import PERF_PROFILE_FILE, PerfRecorder
from repro.observability.live import (
    MONITOR_FILE,
    LiveMonitor,
    StatusBoard,
    TelemetryPusher,
    get_status_board,
    parse_serve_spec,
    render_status_line,
    set_status_board,
    stream_events,
)
from repro.observability.watchdog import CampaignWatchdog, set_watchdog
from repro.optimizer import OptimizationManager, OptimizerConf
from repro.search.store import TrialStore

VARIABLES = [
    {"name": "http", "type": "integer", "low": 20, "high": 60},
    {"name": "download", "type": "integer", "low": 20, "high": 60},
    {"name": "simsearch", "type": "integer", "low": 20, "high": 60},
    {"name": "extract", "type": "integer", "low": 3, "high": 9},
]
OBJECTIVES = [{"metric": "user_resp_time", "mode": "min"}]


@pytest.fixture(autouse=True)
def _clean_globals():
    """Every test leaves the process-global telemetry slots inert."""
    yield
    set_watchdog(None)
    set_status_board(None)
    obs.disable()


def _conf(tmp_path, **overrides):
    data = {
        "name": "live_test",
        "variables": VARIABLES,
        "objectives": OBJECTIVES,
        "algorithm": {"search": "random"},
        "num_samples": 4,
        "executor": "thread",
        "max_workers": 2,
        "seed": 0,
        "duration": 60.0,
        "workdir": str(tmp_path / "work"),
    }
    data.update(overrides)
    return OptimizerConf.from_dict(data)


def _wait_for_monitor(run_dir, timeout_s=15.0):
    """Poll the run dir for an open monitor.json; returns the document."""
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        path = Path(run_dir) / MONITOR_FILE
        if path.exists():
            try:
                doc = json.loads(path.read_text())
            except ValueError:
                doc = {}
            if doc.get("url") and not doc.get("closed"):
                return doc
        time.sleep(0.02)
    raise AssertionError(f"no open {MONITOR_FILE} appeared under {run_dir}")


class TestParseServeSpec:
    def test_accepts_port_forms(self):
        assert parse_serve_spec(None) is None
        assert parse_serve_spec(8080) == ("127.0.0.1", 8080)
        assert parse_serve_spec("8080") == ("127.0.0.1", 8080)
        assert parse_serve_spec("0.0.0.0:0") == ("0.0.0.0", 0)
        assert parse_serve_spec("myhost:9090") == ("myhost", 9090)

    @pytest.mark.parametrize("bad", ["", ":", "host:", "host:abc", 70000, -1, True])
    def test_rejects_bad_specs(self, bad):
        with pytest.raises(ValidationError):
            parse_serve_spec(bad)

    def test_conf_field_roundtrips_and_validates(self, tmp_path):
        conf = _conf(tmp_path, serve="127.0.0.1:0")
        again = OptimizerConf.from_dict(conf.to_dict())
        assert again.serve == "127.0.0.1:0"
        with pytest.raises(ValidationError):
            _conf(tmp_path, serve="nope:nope")


class TestStatusBoard:
    def test_counts_incumbent_and_tail(self):
        board = StatusBoard(name="camp", num_samples=5, mode="min")
        board.set_phase("optimize")
        board.trial_started("t1")
        board.trial_started("t2")
        board.trial_finished("t1", value=3.0, status="terminated")
        board.trial_finished("t2", value=2.0, status="terminated")
        board.trial_finished("t3", value=float("nan"), status="error")
        snap = board.snapshot()
        assert snap["phase"] == "optimize"
        assert snap["trials"] == {
            "total": 5,
            "done": 3,
            "running": 0,
            "pending": 2,
            "errors": 1,
        }
        assert snap["incumbent"] == {"trial_id": "t2", "value": 2.0}
        # the NaN objective was dropped from the history tail
        assert snap["objective_tail"] == [["t1", 3.0], ["t2", 2.0]]

    def test_max_mode_incumbent(self):
        board = StatusBoard(name="camp", num_samples=2, mode="max")
        board.trial_finished("a", value=1.0, status="terminated")
        board.trial_finished("b", value=9.0, status="terminated")
        assert board.snapshot()["incumbent"] == {"trial_id": "b", "value": 9.0}

    def test_null_board_is_default_and_inert(self):
        board = get_status_board()
        assert not board.enabled
        board.trial_started("x")
        board.trial_finished("x", value=1.0, status="terminated")
        assert board.snapshot() == {}


class TestWorkerLiveness:
    def _store(self, tmp_path):
        store = TrialStore.create(tmp_path / "store", lease_s=0.2)
        store.add_trial("t0", {"x": 1})
        return store

    def test_live_then_expired_then_idle(self, tmp_path):
        store = self._store(tmp_path)
        claim = store.pick_trial("w1", lease_s=0.2)
        assert claim is not None
        [info] = store.worker_liveness()
        assert info["runner_id"] == "w1"
        assert info["lease_state"] == "live"
        assert info["active_trials"] == ["t0"]
        assert info["lease_remaining_s"] > 0
        time.sleep(0.25)
        [info] = store.worker_liveness()
        assert info["lease_state"] == "expired"
        store.end_trial("t0", "w1", {"ok": True})
        [info] = store.worker_liveness()
        assert info["lease_state"] == "idle"
        assert info["claims"] == 1 and info["done"] == 1

    def test_reclaim_release_does_not_resurrect_dead_worker(self, tmp_path):
        store = self._store(tmp_path)
        store.pick_trial("dead", lease_s=0.05)
        time.sleep(0.1)
        # w2's pick appends a release event carrying runner_id="dead";
        # that event must not refresh the dead worker's last-seen age.
        claim = store.pick_trial("w2", lease_s=30.0)
        assert claim is not None and claim.prior_claims == 1
        liveness = {info["runner_id"]: info for info in store.worker_liveness()}
        assert liveness["w2"]["lease_state"] == "live"
        assert liveness["dead"]["lease_state"] == "idle"
        assert liveness["dead"]["last_seen_age_s"] > liveness["w2"]["last_seen_age_s"]


class TestLiveServer:
    def test_concurrent_scrapes_during_active_campaign(self, tmp_path):
        release = threading.Event()

        def evaluator(config, seed=None, duration=None):
            # hold trials open until the scrapes have landed
            release.wait(timeout=10.0)
            return {"user_resp_time": float(sum(config.values()))}

        conf = _conf(tmp_path, serve="127.0.0.1:0", num_samples=8)
        manager = OptimizationManager(conf, evaluator=evaluator)
        campaign = threading.Thread(target=manager.run, daemon=True)
        campaign.start()
        try:
            url = _wait_for_monitor(manager.run_dir)["url"]
            results = []
            errors = []

            def scrape(endpoint):
                try:
                    with urllib.request.urlopen(url + endpoint, timeout=10) as resp:
                        results.append((endpoint, resp.status, resp.read()))
                except Exception as exc:  # noqa: BLE001 - collected for the assert
                    errors.append((endpoint, exc))

            threads = [
                threading.Thread(target=scrape, args=(ep,))
                for ep in ("/metrics", "/status") * 3
            ]
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=15)
        finally:
            release.set()
        campaign.join(timeout=60)
        assert not campaign.is_alive()
        assert not errors, errors
        assert len(results) == 6
        assert all(status == 200 for _, status, _ in results)
        metrics = next(body for ep, _, body in results if ep == "/metrics").decode()
        assert "repro_live_requests_total" in metrics
        status_doc = json.loads(next(body for ep, _, body in results if ep == "/status"))
        assert status_doc["schema"] == "repro.live/1"
        assert status_doc["name"] == "live_test"
        assert status_doc["trials"]["total"] == 8
        # graceful shutdown marks the discovery file closed
        closed = json.loads((Path(manager.run_dir) / MONITOR_FILE).read_text())
        assert closed["closed"] is True

    def test_sse_client_receives_injected_watchdog_alert(self):
        tracer, _ = obs.enable()
        watchdog = CampaignWatchdog()
        set_watchdog(watchdog)
        watchdog.attach(tracer)
        monitor = LiveMonitor("127.0.0.1", 0, name="sse")
        monitor.start()
        try:
            events = []
            consumer = threading.Thread(
                target=lambda: events.extend(
                    stream_events(monitor.url, limit=3, timeout_s=15)
                ),
                daemon=True,
            )
            consumer.start()
            deadline = time.monotonic() + 5
            while not monitor.self_stats()["sse_clients"] and time.monotonic() < deadline:
                time.sleep(0.02)
            with tracer.span("trial:x", trial_id="x"):
                pass
            watchdog._emit(
                "straggler",
                "warning",
                "injected for the SSE test",
                key="sse-test",
                time_s=1.0,
                details={"trial_id": "x"},
            )
            consumer.join(timeout=15)
            kinds = [event for event, _ in events]
            assert kinds[0] == "hello"
            assert "span" in kinds and "alert" in kinds
            alert = next(data for event, data in events if event == "alert")
            assert alert["kind"] == "straggler"
            assert alert["message"] == "injected for the SSE test"
            span = next(data for event, data in events if event == "span")
            assert span["name"] == "trial:x"
            assert span["trial_id"] == "x"
        finally:
            monitor.stop()

    def test_slow_sse_client_drops_are_counted_not_blocking(self):
        monitor = LiveMonitor("127.0.0.1", 0, name="slow", sse_queue_size=2)
        # the client never drains: only queue_size events fit, the rest drop
        client = monitor._register_client()
        started = time.monotonic()
        for i in range(10):
            monitor._broadcast("span", {"i": i})
        elapsed = time.monotonic() - started
        assert elapsed < 1.0  # fan-out never blocked on the full queue
        assert client.dropped == 8
        stats = monitor.self_stats()
        assert stats["sse_events_sent"] == 2
        assert stats["sse_events_dropped"] == 8
        # drop counters surface in the self-metrics exposition
        assert "repro_live_events_dropped_total 8" in monitor.render_metrics()

    def test_post_telemetry_merges_with_attribution(self):
        tracer, _ = obs.enable()
        monitor = LiveMonitor("127.0.0.1", 0, name="ingest")
        monitor.start()
        try:
            payload = {
                "schema": "repro.fabric/1",
                "pid": 4242,
                "runner_id": "camp/w4242",
                "epoch_unix": time.time(),
                "spans": [
                    {"name": "evaluate", "span_id": 1, "start_s": 0.0, "end_s": 0.5}
                ],
            }
            pusher = TelemetryPusher(monitor.url, token=monitor.token)
            assert pusher.push(payload, attributes={"trial_id": "t7"})
            assert pusher.pushed == 1
            [span] = [
                s
                for s in tracer.finished()
                if s.attributes.get("runner_id") == "camp/w4242"
            ]
            assert span.name == "evaluate"
            assert span.attributes["pid"] == 4242
            assert span.attributes["trial_id"] == "t7"
            stats = monitor.self_stats()
            assert stats["telemetry_merges"] == 1
            assert stats["telemetry_spans_merged"] == 1
        finally:
            monitor.stop()

    def test_post_telemetry_rejects_bad_token(self):
        tracer, _ = obs.enable()
        monitor = LiveMonitor("127.0.0.1", 0, name="auth")
        monitor.start()
        try:
            payload = {
                "schema": "repro.fabric/1",
                "pid": 1,
                "runner_id": "evil/w1",
                "spans": [
                    {"name": "evaluate", "span_id": 1, "start_s": 0.0, "end_s": 0.5}
                ],
            }
            bad = TelemetryPusher(monitor.url, token="wrong-token")
            assert not bad.push(payload)
            assert bad.errors == 1
            missing = TelemetryPusher(monitor.url)  # no token at all
            assert not missing.push(payload)
            assert monitor.self_stats()["telemetry_rejected"] == 2
            assert monitor.self_stats()["telemetry_merges"] == 0
            assert tracer.finished() == []  # nothing was merged
        finally:
            monitor.stop()

    def test_metrics_and_404_without_enabled_registry(self):
        monitor = LiveMonitor("127.0.0.1", 0, name="bare")
        monitor.start()
        try:
            with urllib.request.urlopen(monitor.url + "/metrics", timeout=5) as resp:
                text = resp.read().decode()
            assert "repro_live_sse_clients 0" in text
            with pytest.raises(urllib.error.HTTPError) as excinfo:
                urllib.request.urlopen(monitor.url + "/nope", timeout=5)
            assert excinfo.value.code == 404
        finally:
            monitor.stop()


class TestFormatJson:
    def _run_dir(self, tmp_path):
        tracer, _ = obs.enable()
        with tracer.span("phase:optimize"):
            with tracer.span("trial:live_test_00000", trial_id="live_test_00000"):
                pass
        run_dir = tmp_path / "run"
        obs.export(run_dir)
        obs.disable()
        return run_dir

    def test_report_format_json(self, tmp_path, capsys):
        run_dir = self._run_dir(tmp_path)
        assert main(["report", str(run_dir), "--format", "json"]) == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["schema"] == "repro.report/1"
        assert doc["spans"]["total"] == 2
        names = {s["name"] for s in doc["spans"]["slowest"]}
        assert "phase:optimize" in names

    def test_report_default_stays_text(self, tmp_path, capsys):
        run_dir = self._run_dir(tmp_path)
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        with pytest.raises(ValueError):
            json.loads(out)

    def test_perf_diff_format_json(self, tmp_path, capsys):
        perf = PerfRecorder()
        for _ in range(50):
            perf.record("suggest", 0.01)
        profile = tmp_path / PERF_PROFILE_FILE
        perf.export_json(profile)
        code = main(["perf", "diff", str(profile), str(profile), "--format", "json"])
        assert code == 0
        doc = json.loads(capsys.readouterr().out)
        assert doc["ok"] is True
        assert doc["rows"]
        assert doc["regressions"] == []


class TestMonitorCli:
    def test_once_against_live_url(self, capsys):
        set_status_board(StatusBoard(name="cli", num_samples=3))
        get_status_board().set_phase("optimize")
        get_status_board().trial_started("t1")
        monitor = LiveMonitor("127.0.0.1", 0, name="cli")
        monitor.start()
        try:
            assert main(["monitor", monitor.url, "--once"]) == 0
            out = capsys.readouterr().out
            assert "[optimize]" in out
            assert "0/3 done" in out
            assert "1 running" in out
        finally:
            monitor.stop()

    def test_finished_run_dir_falls_back_to_report(self, tmp_path, capsys):
        tracer, _ = obs.enable()
        with tracer.span("phase:optimize"):
            pass
        run_dir = tmp_path / "run"
        obs.export(run_dir)
        obs.disable()
        assert main(["monitor", str(run_dir), "--once"]) == 0
        assert "finished-run report" in capsys.readouterr().out

    def test_render_status_line_smoke(self):
        line = render_status_line(
            {
                "phase": "optimize",
                "trials": {"done": 2, "total": 8, "running": 1, "errors": 1},
                "incumbent": {"trial_id": "t1", "value": 42.0},
                "workers": [{"lease_state": "live"}, {"lease_state": "expired"}],
                "alerts": {"total": 3},
            }
        )
        assert "[optimize]" in line
        assert "2/8 done" in line
        assert "1 errors" in line
        assert "best 42 (t1)" in line
        assert "1/2 workers live" in line
        assert "3 alerts" in line


class TestWorkerPushIntegration:
    def test_subprocess_worker_streams_telemetry_mid_campaign(self, tmp_path):
        """A CLI worker on the store executor pushes spans to the monitor.

        The pushed spans must land in the parent trace with the *worker's*
        ``runner_id``/``pid`` attribution, and the ledger outcomes must
        carry the ``telemetry_pushed`` marker instead of embedded payloads.
        """
        conf = _conf(
            tmp_path,
            serve="127.0.0.1:0",
            num_samples=3,
            executor="store",
            store={"spawn": "none", "lease_s": 15.0},
            duration=120.0,
        )
        manager = OptimizationManager(conf, evaluator=lambda config, **kw: {})
        box = {}

        def run_campaign():
            try:
                box["outcome"] = manager.run()
            except Exception as exc:  # noqa: BLE001 - surfaced by the assert
                box["error"] = exc

        campaign = threading.Thread(target=run_campaign, daemon=True)
        campaign.start()
        _wait_for_monitor(manager.run_dir)
        env = dict(os.environ)
        env["PYTHONPATH"] = str(Path(repro.__file__).resolve().parents[1])
        worker = subprocess.run(
            [
                sys.executable,
                "-m",
                "repro",
                "worker",
                str(manager.run_dir),
                "--push-telemetry",
                "--poll",
                "0.05",
                "--idle-timeout",
                "30",
            ],
            env=env,
            capture_output=True,
            text=True,
            timeout=180,
        )
        campaign.join(timeout=60)
        assert not campaign.is_alive()
        assert "error" not in box, box.get("error")
        assert worker.returncode == 0, worker.stderr
        assert "pushing telemetry to http://" in worker.stdout

        # the worker's spans were merged mid-campaign and exported with
        # its runner_id/pid attribution
        spans_path = Path(manager.run_dir) / "spans.jsonl"
        spans = [
            json.loads(line)
            for line in spans_path.read_text().splitlines()
            if line.strip()
        ]
        remote = [
            s
            for s in spans
            if s["name"] == "evaluate" and s.get("attributes", {}).get("runner_id")
        ]
        assert remote, "no pushed worker spans reached the parent trace"
        assert all(s["attributes"]["runner_id"].startswith("live_test/") for s in remote)
        assert all(s["attributes"].get("pid") for s in remote)

        # ledger outcomes carry the pushed marker, not embedded payloads
        state = TrialStore.open(Path(manager.run_dir) / "store").snapshot()
        assert state.counts()["done"] == 3
        outcomes = [t.outcome for t in state.trials.values()]
        assert all(o.get("telemetry_pushed") for o in outcomes), outcomes
        assert all("telemetry" not in o for o in outcomes)

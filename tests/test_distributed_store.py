"""Crash-safety + distributed-execution tests (PR 7).

Covers the store-backed distributed runner (exactly-once completion,
lease-expiry reclamation of killed workers, parity with the single-process
incumbent) and the crash-safe persistence satellites (atomic checkpoints,
truncated-checkpoint resume, torn-line-free concurrent cache appends,
fabric re-activation).
"""

from __future__ import annotations

import json
import multiprocessing
import os
import time
import warnings
from pathlib import Path

import pytest

from repro.bayesopt.space import Integer, Space
from repro.errors import TrialError, ValidationError
from repro.experiments import ExperimentArchive, ExperimentManifest
from repro.observability import fabric
from repro.search import RandomSearch, TrialRunner, TrialStatus, run, run_worker
from repro.search.evalcache import EvalCache
from repro.search.store import TrialStore
from repro.utils.serialization import dump_json


def make_space():
    return Space([Integer(0, 20, name="x")])


def _make_store(root, **kwargs):
    kwargs.setdefault("name", "t")
    kwargs.setdefault("metric", "loss")
    return TrialStore.create(root, **kwargs)


def _quadratic(config):
    return {"loss": (config["x"] - 7) ** 2}


def _slow_trainable(config):
    time.sleep(60.0)
    return {"loss": 0.0}


def _worker_main(store_root, runner_id, lease_s):
    run_worker(store_root, _quadratic, runner_id=runner_id, lease_s=lease_s, poll_s=0.02)


def _hung_worker_main(store_root, runner_id, lease_s):
    run_worker(
        store_root, _slow_trainable, runner_id=runner_id, lease_s=lease_s, poll_s=0.02
    )


def _cache_appender(path, fingerprint, start, count):
    cache = EvalCache(path=path, fingerprint=fingerprint)
    for k in range(start, start + count):
        cache.store({"x": k}, {"objective": float(k)})


class TestTrialStore:
    def test_lifecycle(self, tmp_path):
        store = _make_store(tmp_path / "store")
        store.add_trial("t0", {"x": 1})
        store.add_trial("t1", {"x": 2})
        assert store.snapshot().counts() == {"queued": 2, "claimed": 0, "done": 0}

        claim = store.pick_trial("w1", lease_s=30.0)
        assert claim.trial_id == "t0"
        assert claim.config == {"x": 1}
        assert claim.prior_claims == 0
        store.heartbeat("t0", "w1", lease_s=30.0)
        store.end_trial("t0", "w1", {"ok": True, "raw": {"loss": 1.0}})
        state = store.snapshot()
        assert state.trials["t0"].status == "done"
        assert state.trials["t0"].completed_by == "w1"
        assert state.unfinished() == ["t1"]

    def test_no_double_claim(self, tmp_path):
        store = _make_store(tmp_path / "store")
        store.add_trial("t0", {"x": 1})
        a = store.pick_trial("w1", lease_s=30.0)
        b = store.pick_trial("w2", lease_s=30.0)
        assert a is not None
        assert b is None  # one trial, one claim

    def test_lease_expiry_reclamation(self, tmp_path):
        store = _make_store(tmp_path / "store")
        store.add_trial("t0", {"x": 1})
        store.pick_trial("dead", lease_s=0.05)
        time.sleep(0.1)
        claim = store.pick_trial("alive", lease_s=30.0)
        assert claim is not None
        assert claim.trial_id == "t0"
        assert claim.runner_id == "alive"
        assert claim.prior_claims == 1

    def test_heartbeat_keeps_lease_alive(self, tmp_path):
        store = _make_store(tmp_path / "store")
        store.add_trial("t0", {"x": 1})
        store.pick_trial("w1", lease_s=0.15)
        time.sleep(0.08)
        store.heartbeat("t0", "w1", lease_s=0.5)
        time.sleep(0.1)  # past the original lease, inside the renewed one
        assert store.pick_trial("w2", lease_s=30.0) is None

    def test_foreign_heartbeat_and_release_ignored(self, tmp_path):
        store = _make_store(tmp_path / "store")
        store.add_trial("t0", {"x": 1})
        store.pick_trial("w1", lease_s=0.2)
        store.heartbeat("t0", "intruder", lease_s=300.0)  # not the claimer
        state = store.snapshot()
        assert state.trials["t0"].lease_until < time.time() + 10
        store._append(
            {"type": "release", "trial_id": "t0", "runner_id": "intruder", "t": 0.0}
        )
        assert store.snapshot().trials["t0"].status == "claimed"

    def test_first_done_wins(self, tmp_path):
        store = _make_store(tmp_path / "store")
        store.add_trial("t0", {"x": 1})
        store.pick_trial("w1", lease_s=0.01)
        time.sleep(0.05)
        store.pick_trial("w2", lease_s=30.0)  # reclaimed
        store.end_trial("t0", "w2", {"ok": True, "raw": 2.0})
        store.end_trial("t0", "w1", {"ok": True, "raw": 9.0})  # zombie finishes late
        state = store.snapshot()
        assert state.trials["t0"].outcome == {"ok": True, "raw": 2.0}
        assert state.trials["t0"].completed_by == "w2"
        assert state.duplicate_done == 1

    def test_torn_tail_line_skipped(self, tmp_path):
        store = _make_store(tmp_path / "store")
        store.add_trial("t0", {"x": 1})
        with (store.root / "ledger.jsonl").open("a") as handle:
            handle.write('{"type": "trial", "trial_id": "t1", "conf')  # crash mid-write
        state = store.snapshot()
        assert list(state.trials) == ["t0"]
        assert state.torn_lines == 1

    def test_closed_store_hands_out_nothing(self, tmp_path):
        store = _make_store(tmp_path / "store")
        store.add_trial("t0", {"x": 1})
        store.close()
        assert store.pick_trial("w1") is None

    def test_open_missing_store_fails(self, tmp_path):
        with pytest.raises(ValidationError):
            TrialStore.open(tmp_path / "nowhere")


class TestRunWorker:
    def test_drains_and_exits_on_close(self, tmp_path):
        store = _make_store(tmp_path / "store")
        for k in range(3):
            store.add_trial(f"t{k}", {"x": k})
        store.close()  # closed up front: a worker must still not touch queued work
        assert run_worker(store, _quadratic, poll_s=0.01) == 0

        store2 = _make_store(tmp_path / "store2")
        for k in range(3):
            store2.add_trial(f"t{k}", {"x": k})
        done = {}

        def closer(claim, outcome):
            done[claim.trial_id] = outcome
            if len(done) == 3:
                store2.close()

        completed = run_worker(store2, _quadratic, poll_s=0.01, on_trial=closer)
        assert completed == 3
        assert done["t2"]["raw"] == {"loss": 25}
        assert not done["t0"].get("tainted")

    def test_reclaimed_trial_is_tainted(self, tmp_path):
        store = _make_store(tmp_path / "store")
        store.add_trial("t0", {"x": 7})
        store.pick_trial("dead", lease_s=0.01)
        time.sleep(0.05)
        completed = run_worker(store, _quadratic, poll_s=0.01, max_trials=1)
        assert completed == 1
        outcome = store.done_records()["t0"]
        assert outcome["ok"] is True
        assert outcome["tainted"] is True
        assert outcome["reclaimed"] == 1

    def test_idle_timeout(self, tmp_path):
        store = _make_store(tmp_path / "store")
        start = time.perf_counter()
        assert run_worker(store, _quadratic, poll_s=0.01, idle_timeout_s=0.1) == 0
        assert time.perf_counter() - start < 5.0


class TestStoreBackendCampaigns:
    def test_two_workers_match_sync_incumbent(self, tmp_path):
        space = make_space()
        baseline = run(
            _quadratic,
            search_alg=RandomSearch(space, seed=11),
            metric="loss",
            num_samples=10,
            executor="sync",
            name="base",
        )
        distributed = run(
            _quadratic,
            search_alg=RandomSearch(space, seed=11),
            metric="loss",
            num_samples=10,
            executor="store",
            max_workers=2,
            name="dist",
            backend_options={"store_dir": str(tmp_path / "store"), "lease_s": 10.0},
        )
        assert len(distributed.trials) == 10
        assert all(t.status is TrialStatus.TERMINATED for t in distributed.trials)
        assert distributed.best_result == baseline.best_result
        assert distributed.best_config == baseline.best_config
        # exactly-once: every trial completed once, none duplicated.
        store = TrialStore.open(tmp_path / "store")
        state = store.snapshot()
        assert state.counts()["done"] == 10
        assert state.duplicate_done == 0

    def test_elastic_external_worker_spawn_none(self, tmp_path):
        store_dir = tmp_path / "store"
        ctx = multiprocessing.get_context()
        procs = []

        def launch_worker():
            # Elastic joiner: waits for the parent to create the store.
            deadline = time.time() + 30.0
            while not (store_dir / "store.json").exists():
                if time.time() > deadline:  # pragma: no cover - CI guard
                    raise RuntimeError("store never appeared")
                time.sleep(0.01)
            proc = ctx.Process(
                target=_worker_main, args=(str(store_dir), "elastic-1", 10.0), daemon=True
            )
            proc.start()
            procs.append(proc)

        import threading

        joiner = threading.Thread(target=launch_worker, daemon=True)
        joiner.start()
        with warnings.catch_warnings():
            warnings.simplefilter("ignore", RuntimeWarning)
            analysis = run(
                _quadratic,
                search_alg=RandomSearch(make_space(), seed=5),
                metric="loss",
                num_samples=6,
                executor="store",
                name="elastic",
                backend_options={"store_dir": str(store_dir), "spawn": "none"},
            )
        joiner.join(timeout=30.0)
        for proc in procs:
            proc.join(timeout=30.0)
        assert len(analysis.trials) == 6
        assert all(t.status is TrialStatus.TERMINATED for t in analysis.trials)

    def test_sigkilled_worker_trial_reclaimed(self, tmp_path):
        """A kill -9'd worker stops heartbeating; a peer reclaims its trial."""
        store_dir = tmp_path / "store"
        store = _make_store(store_dir, lease_s=0.3)
        store.add_trial("t0", {"x": 7})
        ctx = multiprocessing.get_context()
        victim = ctx.Process(
            target=_hung_worker_main, args=(str(store_dir), "victim", 0.3), daemon=True
        )
        victim.start()
        deadline = time.time() + 30.0
        while not store.snapshot().trials["t0"].status == "claimed":
            assert time.time() < deadline, "victim never claimed the trial"
            time.sleep(0.02)
        victim.kill()  # SIGKILL: no cleanup, no release event
        victim.join(timeout=10.0)
        completed = run_worker(
            store, _quadratic, runner_id="rescuer", lease_s=0.3, poll_s=0.02, max_trials=1
        )
        assert completed == 1
        state = store.snapshot()
        assert state.trials["t0"].status == "done"
        assert state.trials["t0"].completed_by == "rescuer"
        outcome = state.trials["t0"].outcome
        assert outcome["raw"] == {"loss": 0}
        assert outcome["tainted"] is True  # reclaimed measurements never enter the cache

    def test_all_workers_dead_raises_instead_of_hanging(self, tmp_path):
        def impossible(config):  # workers die before this ever runs
            return {"loss": 0.0}

        runner = TrialRunner(
            impossible,
            RandomSearch(make_space(), seed=1),
            metric="loss",
            num_samples=2,
            executor="store",
            max_workers=1,
            backend_options={
                "store_dir": str(tmp_path / "store"),
                "spawn": "cli",
                "run_dir": str(tmp_path / "no-such-run-dir"),  # workers exit at startup
                "poll_s": 0.05,
            },
        )
        with pytest.raises(TrialError, match="unfinished"):
            runner.run()

    def test_store_requires_store_dir(self, tmp_path):
        runner = TrialRunner(
            _quadratic,
            RandomSearch(make_space(), seed=1),
            metric="loss",
            num_samples=1,
            executor="store",
        )
        with pytest.raises(ValidationError, match="store_dir"):
            runner.run()

    def test_unknown_executor_rejected(self):
        with pytest.raises(ValidationError, match="unknown executor"):
            TrialRunner(
                _quadratic, RandomSearch(make_space(), seed=1), metric="loss",
                executor="carrier-pigeon",
            )


class TestManagerStoreCampaign:
    def test_cli_worker_campaign_end_to_end(self, tmp_path):
        """Full stack: optimizer_conf → store backend → CLI subprocess workers.

        The workers are real ``python -m repro worker`` processes that
        rebuild the Pl@ntNet evaluator from the run directory's
        ``optimizer_conf.json`` — the same elastic entrypoint a second host
        would use.
        """
        from repro.optimizer import OptimizationManager, OptimizerConf
        from repro.plantnet import PlantNetScenario

        conf = OptimizerConf.from_dict(
            {
                "name": "store-e2e",
                "variables": [
                    {"name": "http", "type": "integer", "low": 20, "high": 60},
                    {"name": "download", "type": "integer", "low": 20, "high": 60},
                    {"name": "extract", "type": "integer", "low": 3, "high": 9},
                    {"name": "simsearch", "type": "integer", "low": 20, "high": 60},
                ],
                "objectives": [{"metric": "user_resp_time", "mode": "min"}],
                "algorithm": {"search": "random"},
                "num_samples": 4,
                "executor": "store",
                "max_workers": 2,
                "seed": 3,
                "duration": 150.0,
                "workdir": str(tmp_path),
                "store": {"local_workers": 2, "lease_s": 15.0},
            }
        )
        scenario = PlantNetScenario(duration=150.0, base_seed=3)

        def evaluator(config, seed=None, duration=None):
            return scenario.evaluate(config, seed=seed, duration=duration)

        manager = OptimizationManager(conf, evaluator=evaluator)
        outcome = manager.run()
        assert len(outcome.summary.evaluations) == 4
        assert outcome.summary.best_value == outcome.summary.best_value  # not NaN
        store = TrialStore.open(Path(manager.run_dir) / "store")
        state = store.snapshot()
        assert state.counts()["done"] == 4
        assert state.closed
        # Both CLI workers really ran (each logs its joins into the store dir).
        completers = {t.completed_by for t in state.trials.values()}
        assert all(cid and cid.startswith("store-e2e/local") for cid in completers)


class TestConcurrentCacheAppends:
    def test_multiprocess_appenders_tear_no_lines(self, tmp_path):
        path = tmp_path / "evalcache.jsonl"
        ctx = multiprocessing.get_context()
        workers = 4
        per_worker = 50
        procs = [
            ctx.Process(
                target=_cache_appender, args=(str(path), None, w * per_worker, per_worker)
            )
            for w in range(workers)
        ]
        for proc in procs:
            proc.start()
        for proc in procs:
            proc.join(timeout=60.0)
            assert proc.exitcode == 0
        reloaded = EvalCache(path=path)
        assert reloaded.corrupt == 0
        assert len(reloaded) == workers * per_worker
        for k in (0, 77, workers * per_worker - 1):
            assert reloaded.lookup({"x": k}) == {"objective": float(k)}

    def test_mismatched_key_records_skipped(self, tmp_path):
        path = tmp_path / "evalcache.jsonl"
        cache = EvalCache(path=path, fingerprint={"seed": 1})
        cache.store({"x": 1}, {"objective": 2.0})
        # A record written under a different fingerprint no longer re-hashes
        # to its stored key and must not be served.
        other = EvalCache(path=tmp_path / "other.jsonl", fingerprint={"seed": 2})
        other.store({"x": 5}, {"objective": 9.0})
        with path.open("a") as handle:
            handle.write((tmp_path / "other.jsonl").read_text())
            handle.write("not json at all\n")
        reloaded = EvalCache(path=path, fingerprint={"seed": 1})
        assert len(reloaded) == 1
        assert reloaded.corrupt == 2
        assert reloaded.lookup({"x": 5}) is None
        assert reloaded.stats()["corrupt"] == 2


class TestAtomicCheckpoints:
    def _archive(self, tmp_path, name="crashy"):
        return ExperimentArchive(tmp_path, ExperimentManifest(name=name))

    def test_failed_replace_leaves_original_intact(self, tmp_path, monkeypatch):
        archive = self._archive(tmp_path)
        archive.store_checkpoint([{"trial_id": "a", "config": {"x": 1}}])

        def crash(*args, **kwargs):
            raise OSError("simulated crash during checkpoint replace")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError):
            archive.store_checkpoint([{"trial_id": "b", "config": {"x": 2}}])
        monkeypatch.undo()
        # The original checkpoint is untouched and no temp litter remains.
        assert [r["trial_id"] for r in archive.load_checkpoint()] == ["a"]
        assert list(archive.root.glob("*.tmp")) == []

    def test_truncated_checkpoint_degrades_to_cold_start(self, tmp_path):
        archive = self._archive(tmp_path)
        archive.store_checkpoint([{"trial_id": "a", "config": {"x": 1}}])
        path = archive.root / "checkpoint.json"
        path.write_bytes(path.read_bytes()[:17])  # torn mid-write
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert archive.load_checkpoint() == []
        with pytest.warns(RuntimeWarning, match="unreadable"):
            assert archive.load_watchdog_state() is None

    def test_truncated_checkpoint_falls_back_to_trial_ledger(self, tmp_path):
        archive = self._archive(tmp_path)
        records = [
            {"trial_id": "t0", "config": {"x": 1}, "status": "terminated",
             "result": {"loss": 1.0}},
            {"trial_id": "t1", "config": {"x": 2}, "status": "terminated",
             "result": {"loss": 4.0}},
        ]
        archive.store_checkpoint(records)
        ledger = archive.root / f"{archive.manifest.name}.jsonl"
        with ledger.open("w") as handle:
            for record in records:
                handle.write(json.dumps(record) + "\n")
            # the same trial re-logged later wins (latest record kept) ...
            handle.write(json.dumps({**records[0], "result": {"loss": 1.5}}) + "\n")
            handle.write('{"trial_id": "t2", "conf')  # ... and torn tails are skipped
        (archive.root / "checkpoint.json").write_text('{"trials": [{"trial')
        with pytest.warns(RuntimeWarning, match="unreadable"):
            recovered = {r["trial_id"]: r for r in archive.load_checkpoint()}
        assert set(recovered) == {"t0", "t1"}
        assert recovered["t0"]["result"] == {"loss": 1.5}

    def test_missing_checkpoint_is_a_plain_cold_start(self, tmp_path):
        archive = self._archive(tmp_path)
        # No checkpoint.json at all: no warning, no ledger fallback.
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert archive.load_checkpoint() == []

    def test_dump_json_atomic_cleans_up_temp_on_failure(self, tmp_path, monkeypatch):
        target = tmp_path / "out.json"
        dump_json({"v": 1}, target, atomic=True)

        def crash(*args, **kwargs):
            raise OSError("boom")

        monkeypatch.setattr(os, "replace", crash)
        with pytest.raises(OSError):
            dump_json({"v": 2}, target, atomic=True)
        monkeypatch.undo()
        assert json.loads(target.read_text()) == {"v": 1}
        assert list(tmp_path.iterdir()) == [target]


class TestFabricReactivation:
    def test_reactivation_resets_stale_identity(self):
        from repro.observability.digest import PerfRecorder, get_perf, set_perf
        from repro.observability.metrics import MetricsRegistry, get_registry, set_registry
        from repro.observability.trace import get_tracer, set_tracer

        saved = (get_tracer(), get_registry(), get_perf())
        saved_id = (fabric._runner_id, fabric._activated_pid)
        try:
            first = fabric.activate_worker("alpha")
            assert first == f"alpha/w{os.getpid()}"
            tracer_a = get_tracer()
            # Same identity: idempotent, telemetry slots untouched.
            assert fabric.activate_worker("alpha") == first
            assert get_tracer() is tracer_a
            # A reused worker process activated under a new runner name must
            # not keep shipping spans under the old identity.
            second = fabric.activate_worker("beta")
            assert second == f"beta/w{os.getpid()}"
            assert fabric.worker_runner_id() == second
            assert get_tracer() is not tracer_a
            # Simulate fork inheritance: the recorded pid differs from ours.
            fabric._activated_pid = os.getpid() + 1
            tracer_b = get_tracer()
            assert fabric.activate_worker("beta") == second
            assert get_tracer() is not tracer_b  # fresh slots for the "child"
        finally:
            set_tracer(saved[0])
            set_registry(MetricsRegistry() if saved[1] is None else saved[1])
            set_perf(PerfRecorder() if saved[2] is None else saved[2])
            fabric._runner_id, fabric._activated_pid = saved_id

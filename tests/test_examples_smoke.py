"""Smoke tests: the runnable examples must stay runnable.

Each example is executed in a subprocess (fresh interpreter, like a user
would) and its headline output is checked. Only the fast examples run here;
the full optimization walkthroughs are covered by the benchmarks.
"""

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).parent.parent / "examples"


def _run(name: str, timeout: float = 240.0) -> str:
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / name)],
        capture_output=True,
        text=True,
        timeout=timeout,
    )
    assert result.returncode == 0, result.stderr[-2000:]
    return result.stdout


@pytest.mark.slow
class TestExamples:
    def test_quickstart(self):
        out = _run("quickstart.py")
        assert "refined optimum" in out
        assert "GPU mem" in out

    def test_capacity_planning(self):
        out = _run("capacity_planning.py")
        assert "breaches the 4 s tolerance" in out
        assert "extra days" in out

    def test_pareto_plantnet(self):
        out = _run("pareto_plantnet.py")
        assert "Pareto front" in out
        assert "refined optimum" in out

    def test_multiobjective_continuum(self):
        out = _run("multiobjective_continuum.py")
        assert "Pareto front" in out
        assert "edge" in out

"""Tests for NSGA-II."""

import numpy as np
import pytest

from repro.bayesopt import Integer, Real
from repro.errors import ValidationError
from repro.metaheuristics import NSGA2
from repro.metaheuristics.nsga2 import crowding_distance, fast_non_dominated_sort


class TestSorting:
    def test_fronts_ordered(self):
        values = np.array(
            [
                [1.0, 1.0],  # front 0
                [2.0, 2.0],  # front 1 (dominated by 0)
                [0.5, 3.0],  # front 0 (trade-off)
                [3.0, 3.0],  # front 2
            ]
        )
        fronts = fast_non_dominated_sort(values)
        assert sorted(fronts[0].tolist()) == [0, 2]
        assert fronts[1].tolist() == [1]
        assert fronts[2].tolist() == [3]

    def test_all_nondominated(self):
        values = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        fronts = fast_non_dominated_sort(values)
        assert len(fronts) == 1
        assert len(fronts[0]) == 4

    def test_crowding_extremes_infinite(self):
        values = np.array([[0.0, 3.0], [1.0, 2.0], [2.0, 1.0], [3.0, 0.0]])
        crowding = crowding_distance(values)
        assert crowding[0] == np.inf and crowding[-1] == np.inf
        assert np.isfinite(crowding[1]) and np.isfinite(crowding[2])

    def test_crowding_small_front(self):
        assert (crowding_distance(np.array([[1.0, 2.0]])) == np.inf).all()


class TestNSGA2:
    @staticmethod
    def _zdt1(x):
        f1 = x[0]
        g = 1 + 9 * sum(x[1:]) / (len(x) - 1)
        return (f1, g * (1 - np.sqrt(f1 / g)))

    def test_converges_to_zdt1_front(self):
        dims = [Real(0, 1, name=f"x{i}") for i in range(5)]
        front = NSGA2(population_size=40, seed=0).minimize_multi(
            self._zdt1, dims, n_iterations=50
        )
        values = np.array(front.values)
        # true front: f2 = 1 − sqrt(f1)
        error = np.abs(values[:, 1] - (1 - np.sqrt(values[:, 0])))
        assert np.median(error) < 0.05
        assert len(front) >= 10  # a spread-out front, not a single point

    def test_front_mutually_nondominated(self):
        dims = [Real(0, 1, name=f"x{i}") for i in range(3)]
        front = NSGA2(population_size=20, seed=1).minimize_multi(
            self._zdt1, dims, n_iterations=20
        )
        values = np.array(front.values)
        for i in range(len(values)):
            for j in range(len(values)):
                if i != j:
                    assert not (
                        (values[i] <= values[j]).all() and (values[i] < values[j]).any()
                    )

    def test_best_for(self):
        dims = [Real(0, 1, name=f"x{i}") for i in range(3)]
        front = NSGA2(population_size=20, seed=2).minimize_multi(
            self._zdt1, dims, n_iterations=20
        )
        point0, values0 = front.best_for(0)
        assert values0[0] == min(v[0] for v in front.values)

    def test_single_objective_facade(self):
        result = NSGA2(population_size=20, seed=0).minimize(
            lambda x: (x[0] - 0.3) ** 2 + (x[1] - 7) ** 2 * 0.01,
            [Real(0, 1, name="a"), Integer(0, 10, name="k")],
            n_iterations=25,
        )
        assert result.fun < 0.01
        assert result.x[1] == 7

    def test_deterministic(self):
        dims = [Real(0, 1, name=f"x{i}") for i in range(3)]
        a = NSGA2(population_size=12, seed=5).minimize_multi(self._zdt1, dims, n_iterations=10)
        b = NSGA2(population_size=12, seed=5).minimize_multi(self._zdt1, dims, n_iterations=10)
        assert a.values == b.values

    def test_validation(self):
        with pytest.raises(ValidationError):
            NSGA2(population_size=3)
        with pytest.raises(ValidationError):
            NSGA2(population_size=5)  # odd
        with pytest.raises(ValidationError):
            NSGA2(crossover_rate=2.0)
        with pytest.raises(ValidationError):
            NSGA2(population_size=8, seed=0).minimize_multi(
                lambda x: (), [Real(0, 1)], n_iterations=1
            )

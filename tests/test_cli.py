"""Tests for the command-line interface."""

import json

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_version(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0


class TestCalibrationCommand:
    def test_analytic_report_ok(self, capsys):
        assert main(["calibration", "--evaluator", "analytic"]) == 0
        out = capsys.readouterr().out
        assert "baseline@80" in out
        assert "NO" not in out


class TestScenarioCommand:
    def test_named_config(self, capsys):
        code = main(
            ["scenario", "--config", "baseline", "--requests", "40", "--duration", "150"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "user_resp_time" in out

    def test_explicit_config(self, capsys):
        code = main(
            ["scenario", "--config", "30,30,5,30", "--requests", "30", "--duration", "120"]
        )
        assert code == 0

    def test_bad_config_string(self):
        with pytest.raises(SystemExit):
            main(["scenario", "--config", "1,2,3"])


class TestOptimizeCommand:
    def test_full_campaign_from_conf(self, tmp_path, capsys):
        conf = {
            "name": "cli_campaign",
            "variables": [
                {"name": "http", "type": "integer", "low": 20, "high": 60},
                {"name": "download", "type": "integer", "low": 20, "high": 60},
                {"name": "simsearch", "type": "integer", "low": 20, "high": 60},
                {"name": "extract", "type": "integer", "low": 3, "high": 9},
            ],
            "objectives": [{"metric": "user_resp_time", "mode": "min"}],
            "algorithm": {"base_estimator": "ET", "n_initial_points": 3},
            "num_samples": 4,
            "seed": 0,
            "duration": 120.0,
            "workdir": str(tmp_path / "work"),
        }
        conf_path = tmp_path / "conf.json"
        conf_path.write_text(json.dumps(conf))
        code = main(["optimize", str(conf_path), "--repeat", "1", "--duration", "120"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Optimization summary" in out
        assert "validation over 2 runs" in out

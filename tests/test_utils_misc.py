"""Tests for tables, validation, serialization utilities."""

import dataclasses
from pathlib import Path

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.utils.serialization import dump_json, load_json, to_jsonable
from repro.utils.tables import Table
from repro.utils.validation import check_in_range, check_positive, check_probability, check_type


class TestTable:
    def test_render_alignment(self):
        t = Table(["a", "bbbb"], title="T")
        t.add_row(["x", 1])
        out = t.render()
        assert out.splitlines()[0] == "T"
        assert "a " in out and "bbbb" in out

    def test_row_width_checked(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row([1])

    def test_float_formatting(self):
        t = Table(["v"])
        t.add_row([2.65714])
        assert "2.657" in t.render()


class TestValidation:
    def test_check_positive(self):
        assert check_positive("x", 2) == 2.0
        with pytest.raises(ValidationError):
            check_positive("x", 0)
        assert check_positive("x", 0, strict=False) == 0.0
        with pytest.raises(ValidationError):
            check_positive("x", -1, strict=False)

    def test_check_in_range(self):
        assert check_in_range("x", 5, 0, 10) == 5.0
        with pytest.raises(ValidationError):
            check_in_range("x", 0, 0, 10, inclusive=False)

    def test_check_probability(self):
        assert check_probability("p", 0.5) == 0.5
        with pytest.raises(ValidationError):
            check_probability("p", 1.5)

    def test_check_type(self):
        assert check_type("x", 5, int) == 5
        with pytest.raises(ValidationError):
            check_type("x", "s", (int, float))


@dataclasses.dataclass
class _Point:
    x: int
    label: str


class TestSerialization:
    def test_numpy_and_dataclass(self):
        obj = {
            "arr": np.arange(3),
            "scalar": np.float64(1.5),
            "point": _Point(1, "a"),
            "set": {2, 1},
            "path": Path("/tmp/x"),
        }
        out = to_jsonable(obj)
        assert out["arr"] == [0, 1, 2]
        assert out["scalar"] == 1.5
        assert out["point"] == {"x": 1, "label": "a"}
        assert out["set"] == [1, 2]
        assert out["path"] == "/tmp/x"

    def test_unserializable_raises(self):
        with pytest.raises(TypeError):
            to_jsonable(object())

    def test_roundtrip(self, tmp_path):
        path = dump_json({"a": [1, 2], "b": "x"}, tmp_path / "sub" / "f.json")
        assert load_json(path) == {"a": [1, 2], "b": "x"}

"""Tests for the engine's CPU/GPU models and configuration types."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    BASELINE_CONFIG,
    CpuContentionModel,
    EngineModelParams,
    GpuModel,
    ThreadPoolConfig,
    WorkloadSpec,
)
from repro.engine.cpumodel import inflation_factor
from repro.errors import ValidationError


class TestThreadPoolConfig:
    def test_baseline_matches_table_ii(self):
        assert BASELINE_CONFIG.http == 40
        assert BASELINE_CONFIG.download == 40
        assert BASELINE_CONFIG.extract == 7
        assert BASELINE_CONFIG.simsearch == 40

    def test_replace(self, baseline_config):
        refined = baseline_config.replace(extract=6)
        assert refined.extract == 6
        assert refined.http == 40
        assert baseline_config.extract == 7  # original untouched

    def test_validation(self):
        with pytest.raises(ValidationError):
            ThreadPoolConfig(http=0, download=1, extract=1, simsearch=1)
        with pytest.raises(ValidationError):
            ThreadPoolConfig(http=1.5, download=1, extract=1, simsearch=1)  # type: ignore[arg-type]

    def test_paper_bounds(self):
        ThreadPoolConfig(20, 60, 3, 60).validate_paper_bounds()
        with pytest.raises(ValidationError):
            ThreadPoolConfig(61, 40, 7, 40).validate_paper_bounds()
        with pytest.raises(ValidationError):
            ThreadPoolConfig(40, 40, 10, 40).validate_paper_bounds()

    def test_dict_roundtrip(self, baseline_config):
        assert ThreadPoolConfig.from_dict(baseline_config.to_dict()) == baseline_config

    def test_from_dict_missing_key(self):
        with pytest.raises(ValidationError, match="missing"):
            ThreadPoolConfig.from_dict({"http": 40})


class TestWorkloadSpec:
    def test_paper_defaults(self):
        spec = WorkloadSpec()
        assert spec.duration == 1380.0
        assert spec.sample_interval == 10.0

    def test_samples_per_run(self):
        # the paper's 138 samples minus our explicit warm-up window
        spec = WorkloadSpec(duration=1380.0, warmup=0.0)
        assert spec.samples_per_run == 138

    def test_validation(self):
        with pytest.raises(ValidationError):
            WorkloadSpec(simultaneous_requests=0)
        with pytest.raises(ValidationError):
            WorkloadSpec(warmup=2000.0, duration=1000.0)


class TestInflationFactor:
    def test_idle_is_one(self):
        assert inflation_factor(0.0, 0.002, 4.0) == 1.0

    def test_low_load_near_one(self):
        assert inflation_factor(0.5, 0.002, 4.0) == pytest.approx(1.0, abs=0.01)

    @given(st.floats(0.0, 0.99), st.floats(0.0, 0.99))
    @settings(max_examples=100, deadline=None)
    def test_monotone_in_rho(self, r1, r2):
        lo, hi = sorted((r1, r2))
        assert inflation_factor(lo, 0.01, 4.0) <= inflation_factor(hi, 0.01, 4.0) + 1e-12

    def test_clamp_bounds_max(self):
        capped = inflation_factor(0.9999, 0.01, 4.0, rho_max=0.97)
        at_max = inflation_factor(0.97, 0.01, 4.0, rho_max=0.97)
        assert capped == pytest.approx(at_max)

    def test_oversaturation_penalized(self):
        assert inflation_factor(1.5, 0.01, 4.0, kappa=1.5) > inflation_factor(1.0, 0.01, 4.0)

    def test_zero_scale_disables(self):
        assert inflation_factor(0.95, 0.0, 4.0) == 1.0


class TestCpuContentionModel:
    def test_work_invariance(self):
        """Draw w/I for duration b*I keeps core-seconds at w*b."""
        cpu = CpuContentionModel(40.0, base_load=38.0, scale=0.01, sharpness=2.0)
        slowdown = cpu.inflation()
        assert slowdown > 1.0
        draw = 1.0 / slowdown
        work = draw * (1.0 * slowdown)
        assert work == pytest.approx(1.0)

    def test_usage_integral(self):
        cpu = CpuContentionModel(10.0)
        cpu.acquire(5.0, 0.0)
        cpu.release(5.0, 10.0)
        assert cpu.usage_integral(10.0) == pytest.approx(5.0)  # 0.5 × 10s

    def test_usage_capped_at_one(self):
        cpu = CpuContentionModel(10.0)
        cpu.acquire(100.0, 0.0)
        assert cpu.usage() == 1.0

    def test_release_floors_at_base_load(self):
        cpu = CpuContentionModel(10.0, base_load=2.0)
        cpu.acquire(1.0, 0.0)
        cpu.release(5.0, 1.0)  # over-release
        assert cpu.demand == 2.0

    def test_validation(self):
        with pytest.raises(ValueError):
            CpuContentionModel(10.0, scale=-1)
        with pytest.raises(ValueError):
            CpuContentionModel(10.0, kappa=0.5)
        cpu = CpuContentionModel(10.0)
        with pytest.raises(ValueError):
            cpu.acquire(-1.0, 0.0)


class TestGpuModel:
    def test_memory_matches_paper_claim(self):
        """E=7 → ~10 GB, E=6 → ~7 GB (the 30 % reduction of Sec. IV-C)."""
        gpu = GpuModel(EngineModelParams())
        assert gpu.memory_gb(7) == pytest.approx(10.0, rel=0.02)
        assert gpu.memory_gb(6) == pytest.approx(7.0, rel=0.02)
        reduction = 1 - gpu.memory_gb(6) / gpu.memory_gb(7)
        assert reduction == pytest.approx(0.30, abs=0.02)

    def test_memory_monotone_and_bounded(self):
        gpu = GpuModel(EngineModelParams())
        values = [gpu.memory_gb(e) for e in range(1, 10)]
        assert values == sorted(values)
        assert all(v <= 32.0 for v in values)

    def test_latency_grows_with_concurrency(self):
        gpu = GpuModel(EngineModelParams())
        assert gpu.inference_time(1) < gpu.inference_time(4) < gpu.inference_time(9)

    def test_throughput_grows_with_pool(self):
        gpu = GpuModel(EngineModelParams())
        assert gpu.max_throughput(7) > gpu.max_throughput(3)

    def test_stream_accounting(self):
        gpu = GpuModel(EngineModelParams())
        assert gpu.stream_started() == 1
        assert gpu.stream_started() == 2
        gpu.stream_finished()
        assert gpu.active_streams == 1
        gpu.stream_finished()
        with pytest.raises(ValidationError):
            gpu.stream_finished()

    def test_utilization_band(self):
        """Paper: GPU utilization 35-60 % at typical concurrency."""
        gpu = GpuModel(EngineModelParams())
        assert 0.3 <= gpu.utilization(active_streams=6) <= 0.65

    def test_power_band(self):
        """Paper: 50-80 W power draw."""
        gpu = GpuModel(EngineModelParams())
        power = gpu.power_draw_w(active_streams=6)
        assert 45.0 <= power <= 85.0

    def test_invalid_concurrency(self):
        gpu = GpuModel(EngineModelParams())
        with pytest.raises(ValidationError):
            gpu.inference_time(0)


class TestEngineModelParams:
    def test_defaults_valid(self):
        EngineModelParams()

    def test_validation(self):
        with pytest.raises(ValidationError):
            EngineModelParams(t_simsearch=-1)
        with pytest.raises(ValidationError):
            EngineModelParams(contention_rho_max=1.5)
        with pytest.raises(ValidationError):
            EngineModelParams(service_cv=-0.1)

    def test_t_download_combines_parts(self):
        p = EngineModelParams(image_bytes=1e6, download_bandwidth=1e6, t_download_cpu=0.5)
        assert p.t_download == pytest.approx(1.5)

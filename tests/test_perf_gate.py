"""Tests for the perf baseline store and the regression gate.

The gate must diff clean on identical runs, fail on an injected 2x
suggest-latency regression, and understand every profile source it
claims to (perf_profile.json, run directories, BENCH result JSONs).
"""

import json
import math
import random

import pytest

from repro.cli import main
from repro.errors import ValidationError
from repro.observability.digest import PERF_PROFILE_FILE, PerfRecorder
from repro.observability.perf import (
    BASELINE_SCHEMA,
    diff_profiles,
    load_profile,
    record_baseline,
)


def _profile(tmp_path, name, *, scale=1.0, n=200, seed=9):
    """Write a perf_profile.json with deterministic suggest/tell latencies."""
    rng = random.Random(seed)
    perf = PerfRecorder()
    for _ in range(n):
        perf.record("suggest", scale * rng.uniform(0.008, 0.012))
        perf.record("tell", rng.uniform(0.001, 0.002))
    path = tmp_path / name
    path.mkdir()
    perf.export_json(path / PERF_PROFILE_FILE)
    return path


class TestLoadProfile:
    def test_loads_profile_file_and_run_dir(self, tmp_path):
        run_dir = _profile(tmp_path, "run")
        by_dir = load_profile(run_dir)
        by_file = load_profile(run_dir / PERF_PROFILE_FILE)
        assert set(by_dir) == set(by_file) == {"suggest", "tell"}
        assert by_dir["suggest"].digest is not None
        assert math.isfinite(by_dir["suggest"].value("p90"))

    def test_loads_bench_campaign_shape(self, tmp_path):
        payload = {
            "baseline": {
                "trials": 500,
                "wall_s": 10.0,
                "suggest": {"p50_ms": 2.0, "p90_ms": 4.0, "p99_ms": 8.0},
                "tell": {"p50_ms": 0.5, "p90_ms": 1.0, "p99_ms": 2.0},
            },
            "n_trials": 500,
        }
        path = tmp_path / "BENCH_campaign.json"
        path.write_text(json.dumps(payload))
        ops = load_profile(path)
        assert ops["baseline.suggest"].value("p50") == pytest.approx(0.002)
        assert ops["baseline.trial"].value("mean") == pytest.approx(0.02)

    def test_loads_bench_eval_shape(self, tmp_path):
        payload = {
            "campaign": {"fast": {"trials": 16, "wall_s": 8.0}},
            "des": {"fast": {"events_per_sec": 50_000.0}},
        }
        path = tmp_path / "BENCH_eval.json"
        path.write_text(json.dumps(payload))
        ops = load_profile(path)
        assert ops["campaign.fast.trial"].value("mean") == pytest.approx(0.5)
        assert ops["des.fast.event"].value("mean") == pytest.approx(2e-5)

    def test_loads_bench_hybrid_shape(self, tmp_path):
        # carries a "des" arm too — must be sniffed as hybrid, not eval
        payload = {
            "hybrid": {"wall_s": 0.8, "des_epochs": 32},
            "des": {"wall_s": 80.0, "completed": 1_000_000},
            "speedup": 100.0,
        }
        path = tmp_path / "BENCH_hybrid.json"
        path.write_text(json.dumps(payload))
        ops = load_profile(path)
        assert ops["hybrid.window"].value("mean") == pytest.approx(0.025)
        assert ops["des.request"].value("mean") == pytest.approx(8e-5)

    def test_garbage_rejected(self, tmp_path):
        path = tmp_path / "junk.json"
        path.write_text('{"hello": "world"}')
        with pytest.raises(ValidationError):
            load_profile(path)
        path.write_text("not json")
        with pytest.raises(ValidationError):
            load_profile(path)
        with pytest.raises(ValidationError):
            load_profile(tmp_path / "missing.json")

    def test_committed_baselines_parse(self):
        from pathlib import Path

        baselines = Path(__file__).resolve().parent.parent / "benchmarks" / "baselines"
        for name in ("BENCH_campaign.json", "BENCH_eval.json", "BENCH_hybrid.json"):
            ops = load_profile(baselines / name)
            assert ops, name


class TestRecordBaseline:
    def test_roundtrip(self, tmp_path):
        run_dir = _profile(tmp_path, "run")
        out = record_baseline(run_dir, tmp_path / "baseline.json")
        data = json.loads(out.read_text())
        assert data["schema"] == BASELINE_SCHEMA
        ops = load_profile(out)
        assert ops["suggest"].digest is not None
        # recorded baseline diffs clean against its own source
        assert diff_profiles(out, run_dir).ok


class TestDiffProfiles:
    def test_identical_runs_diff_clean(self, tmp_path):
        run = _profile(tmp_path, "run")
        diff = diff_profiles(run, run)
        assert diff.ok
        assert diff.rows
        assert all(row["verdict"] == "ok" for row in diff.rows)

    def test_2x_suggest_regression_fails(self, tmp_path):
        base = _profile(tmp_path, "base", seed=9)
        slow = _profile(tmp_path, "slow", scale=2.0, seed=10)
        diff = diff_profiles(base, slow)
        assert not diff.ok
        ops_with_regression = {row["op"] for row in diff.regressions}
        assert "suggest" in ops_with_regression
        # tell is untouched
        assert all(row["op"] != "tell" for row in diff.regressions)
        assert "REGRESSION" in diff.render()

    def test_improvement_verdict(self, tmp_path):
        base = _profile(tmp_path, "base", scale=2.0, seed=9)
        fast = _profile(tmp_path, "fast", scale=1.0, seed=10)
        diff = diff_profiles(base, fast)
        assert diff.ok
        assert any(row["op"] == "suggest" for row in diff.improvements)

    def test_one_sided_ops_skipped(self, tmp_path):
        base = _profile(tmp_path, "base")
        extra = load_profile(base)
        trimmed = {op: s for op, s in extra.items() if op != "tell"}
        diff = diff_profiles(extra, trimmed)
        assert diff.ok
        assert any(entry.startswith("tell") for entry in diff.skipped)

    def test_ops_filter(self, tmp_path):
        base = _profile(tmp_path, "base")
        slow = _profile(tmp_path, "slow", scale=2.0)
        diff = diff_profiles(base, slow, ops=["tell"])
        assert diff.ok  # the regressed suggest op was filtered out

    def test_bad_threshold(self, tmp_path):
        run = _profile(tmp_path, "run")
        with pytest.raises(ValidationError):
            diff_profiles(run, run, threshold=0.0)

    def test_serializable(self, tmp_path):
        run = _profile(tmp_path, "run")
        report = diff_profiles(run, run).to_dict()
        json.dumps(report)
        assert report["ok"] is True


class TestPerfCli:
    def test_record_then_diff_exit_codes(self, tmp_path, capsys):
        run = _profile(tmp_path, "run")
        baseline = tmp_path / "baseline.json"
        assert main(["perf", "record", str(run), "--out", str(baseline)]) == 0
        # identical candidate: exit 0
        assert main(["perf", "diff", str(baseline), str(run)]) == 0
        out = capsys.readouterr().out
        assert "perf diff" in out
        # regressed candidate: exit 1 + machine-readable report
        slow = _profile(tmp_path, "slow", scale=2.0, seed=10)
        report = tmp_path / "report.json"
        code = main(
            ["perf", "diff", str(baseline), str(slow), "--report", str(report)]
        )
        assert code == 1
        data = json.loads(report.read_text())
        assert data["ok"] is False
        assert data["regressions"]

    def test_record_bad_source_exits_nonzero(self, tmp_path):
        bad = tmp_path / "junk.json"
        bad.write_text("[]")
        with pytest.raises(SystemExit):
            main(["perf", "record", str(bad), "--out", str(tmp_path / "b.json")])

    def test_custom_quantiles_and_threshold(self, tmp_path, capsys):
        base = _profile(tmp_path, "base")
        slow = _profile(tmp_path, "slow", scale=1.4, seed=10)
        # generous threshold: the 1.4x shift passes
        assert (
            main(
                [
                    "perf", "diff", str(base), str(slow),
                    "--threshold", "0.6", "--quantiles", "p50",
                ]
            )
            == 0
        )
        capsys.readouterr()

"""Report/dashboard CLIs against degenerate run directories.

A run that crashed early, exported nothing but spans, or recorded zero
trials must still render — the observability surface is most needed
exactly when the run went wrong.
"""

import json

import pytest

import repro.observability as obs
from repro.cli import main
from repro.errors import ValidationError
from repro.observability import load_run, render_report
from repro.observability.digest import PERF_PROFILE_FILE, set_perf
from repro.observability.metrics import set_registry
from repro.observability.trace import set_tracer


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    set_tracer(None)
    set_registry(None)
    set_perf(None)


def _minimal_run(tmp_path, *, spans=True, perf=True):
    """Export a tiny but real run directory, optionally dropping artifacts."""
    tracer, _ = obs.enable()
    with tracer.span("trial:t0", trial_id="t0"):
        with tracer.span("execute", trial_id="t0"):
            pass
    obs.get_perf().record("suggest", 0.002)
    obs.get_perf().record("evaluate", 0.1)
    run_dir = tmp_path / "run"
    run_dir.mkdir()
    obs.export(run_dir)
    obs.disable()
    if not spans:
        (run_dir / "spans.jsonl").unlink()
    if not perf:
        (run_dir / PERF_PROFILE_FILE).unlink(missing_ok=True)
    return run_dir


class TestLoadRun:
    def test_empty_dir_rejected(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(ValidationError):
            load_run(empty)

    def test_missing_dir_rejected(self, tmp_path):
        with pytest.raises(ValidationError):
            load_run(tmp_path / "nope")

    def test_perf_profile_alone_is_enough(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / PERF_PROFILE_FILE).write_text(
            json.dumps({"schema": "repro.perf_profile/1", "ops": {}, "windows": []})
        )
        artifacts = load_run(run_dir)
        assert artifacts.spans == []
        assert artifacts.perf.get("schema") == "repro.perf_profile/1"

    def test_empty_spans_file_ok(self, tmp_path):
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "spans.jsonl").write_text("")
        artifacts = load_run(run_dir)
        assert artifacts.spans == []


class TestReportCli:
    def test_full_run_includes_perf_section(self, tmp_path, capsys):
        run_dir = _minimal_run(tmp_path)
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "latency percentiles" in out

    def test_run_without_perf_profile(self, tmp_path, capsys):
        run_dir = _minimal_run(tmp_path, perf=False)
        assert main(["report", str(run_dir)]) == 0
        out = capsys.readouterr().out
        assert "latency percentiles" not in out

    def test_zero_trial_run(self, tmp_path, capsys):
        """spans.jsonl exists but holds no trial spans at all."""
        run_dir = tmp_path / "run"
        run_dir.mkdir()
        (run_dir / "spans.jsonl").write_text("")
        assert main(["report", str(run_dir)]) == 0
        assert "report" in capsys.readouterr().out.lower()

    def test_render_report_with_degenerate_perf(self, tmp_path):
        run_dir = _minimal_run(tmp_path)
        artifacts = load_run(run_dir)
        # ops entry with an empty digest / missing keys must not crash
        artifacts.perf = {"ops": {"weird": {"count": 0}}, "windows": []}
        assert isinstance(render_report(artifacts), str)


class TestDashboardCli:
    def test_builds_without_perf_or_alerts(self, tmp_path, capsys):
        run_dir = _minimal_run(tmp_path, perf=False)
        assert main(["dashboard", str(run_dir)]) == 0
        html = (run_dir / "timeline.html").read_text()
        assert "Latency percentiles" in html  # card renders (empty) regardless
        capsys.readouterr()

    def test_embeds_perf_payload(self, tmp_path, capsys):
        run_dir = _minimal_run(tmp_path)
        out_dir = tmp_path / "out"
        assert main(["dashboard", str(run_dir), "--out", str(out_dir)]) == 0
        html = (out_dir / "timeline.html").read_text()
        assert '"perf"' in html
        assert "queue_wait" in html or "ops" in html
        capsys.readouterr()

    def test_missing_spans_fails_cleanly(self, tmp_path):
        run_dir = _minimal_run(tmp_path, spans=False)
        with pytest.raises(SystemExit):
            main(["dashboard", str(run_dir)])

"""Tests for GA / DE / SA / PSO."""

import pytest

from repro.bayesopt import Integer, Real
from repro.errors import ValidationError
from repro.metaheuristics import (
    DifferentialEvolution,
    GeneticAlgorithm,
    ParticleSwarm,
    SimulatedAnnealing,
)

ALL = [
    GeneticAlgorithm(seed=0),
    DifferentialEvolution(seed=0),
    SimulatedAnnealing(seed=0),
    ParticleSwarm(seed=0),
]


def _sphere(x):
    return sum((v - 0.3) ** 2 for v in x[:2]) + abs(x[2] - 4) * 0.2


DIMS = [Real(-2, 2, name="a"), Real(-2, 2, name="b"), Integer(0, 10, name="k")]


class TestConvergence:
    @pytest.mark.parametrize("algo", ALL, ids=lambda a: type(a).__name__)
    def test_finds_near_optimum(self, algo):
        result = algo.minimize(_sphere, DIMS, n_iterations=60)
        assert result.fun < 0.2
        assert result.x[2] == 4

    @pytest.mark.parametrize("algo", ALL, ids=lambda a: type(a).__name__)
    def test_history_monotone_nonincreasing(self, algo):
        result = algo.minimize(_sphere, DIMS, n_iterations=30)
        assert all(b <= a + 1e-12 for a, b in zip(result.history, result.history[1:]))
        assert result.history[-1] == pytest.approx(result.fun, abs=1e-9)

    @pytest.mark.parametrize("algo", ALL, ids=lambda a: type(a).__name__)
    def test_result_point_in_space(self, algo):
        result = algo.minimize(_sphere, DIMS, n_iterations=10)
        a, b, k = result.x
        assert -2 <= a <= 2 and -2 <= b <= 2
        assert isinstance(k, int) and 0 <= k <= 10

    def test_deterministic_with_seed(self):
        a = GeneticAlgorithm(seed=9).minimize(_sphere, DIMS, n_iterations=15)
        b = GeneticAlgorithm(seed=9).minimize(_sphere, DIMS, n_iterations=15)
        assert a.fun == b.fun and a.x == b.x

    def test_memoization_counts_unique_points(self):
        calls = []

        def counting(x):
            calls.append(tuple(x))
            return _sphere(x)

        result = DifferentialEvolution(seed=0, population_size=10).minimize(
            counting, DIMS, n_iterations=10
        )
        assert result.n_evaluations == len(set(calls))


class TestValidation:
    def test_iterations_validated(self):
        with pytest.raises(ValidationError):
            GeneticAlgorithm(seed=0).minimize(_sphere, DIMS, n_iterations=0)

    def test_ga_params(self):
        with pytest.raises(ValidationError):
            GeneticAlgorithm(population_size=2)
        with pytest.raises(ValidationError):
            GeneticAlgorithm(tournament_size=1)
        with pytest.raises(ValidationError):
            GeneticAlgorithm(crossover_rate=1.5)

    def test_de_params(self):
        with pytest.raises(ValidationError):
            DifferentialEvolution(population_size=3)
        with pytest.raises(ValidationError):
            DifferentialEvolution(differential_weight=0.0)

    def test_sa_params(self):
        with pytest.raises(ValidationError):
            SimulatedAnnealing(initial_temperature=0.0)
        with pytest.raises(ValidationError):
            SimulatedAnnealing(cooling_rate=1.0)

    def test_pso_params(self):
        with pytest.raises(ValidationError):
            ParticleSwarm(swarm_size=1)
        with pytest.raises(ValidationError):
            ParticleSwarm(velocity_max=0.0)

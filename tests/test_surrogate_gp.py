"""Tests for the Gaussian process (Kriging) surrogate."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.surrogate import GaussianProcessRegressor, Matern, RBF


class TestKernels:
    def test_rbf_diagonal_ones(self, rng):
        X = rng.uniform(size=(10, 2))
        K = RBF(0.7)(X, X)
        assert np.allclose(np.diag(K), 1.0)
        assert (K <= 1.0 + 1e-12).all()

    def test_matern_nu_validation(self):
        with pytest.raises(ValidationError):
            Matern(nu=2.0)

    @pytest.mark.parametrize("nu", [0.5, 1.5, 2.5])
    def test_matern_decreases_with_distance(self, nu):
        kernel = Matern(1.0, nu=nu)
        A = np.array([[0.0]])
        B = np.array([[0.0], [0.5], [1.0], [2.0]])
        values = kernel(A, B).ravel()
        assert values[0] == pytest.approx(1.0)
        assert (np.diff(values) < 0).all()

    def test_anisotropic_length_scales(self):
        kernel = RBF(np.array([0.1, 10.0]))
        A = np.array([[0.0, 0.0]])
        near_in_x1 = np.array([[0.2, 0.0]])
        near_in_x2 = np.array([[0.0, 0.2]])
        assert kernel(A, near_in_x1)[0, 0] < kernel(A, near_in_x2)[0, 0]


class TestGPRegression:
    def test_interpolates_noiseless_data(self, rng):
        X = rng.uniform(-2, 2, size=(25, 1))
        y = np.sin(X[:, 0])
        gp = GaussianProcessRegressor(noise=1e-8, random_state=0).fit(X, y)
        mean, std = gp.predict(X, return_std=True)
        assert mean == pytest.approx(y, abs=5e-2)

    def test_uncertainty_grows_off_data(self, rng):
        X = rng.uniform(-1, 1, size=(30, 1))
        y = np.sin(3 * X[:, 0])
        gp = GaussianProcessRegressor(random_state=0).fit(X, y)
        _, std_in = gp.predict(np.array([[0.0]]), return_std=True)
        _, std_out = gp.predict(np.array([[4.0]]), return_std=True)
        assert std_out[0] > std_in[0]

    def test_generalizes(self, rng):
        X = rng.uniform(-2, 2, size=(60, 2))
        y = X[:, 0] ** 2 + np.sin(X[:, 1])
        Xt = rng.uniform(-2, 2, size=(40, 2))
        yt = Xt[:, 0] ** 2 + np.sin(Xt[:, 1])
        gp = GaussianProcessRegressor(random_state=0).fit(X, y)
        assert gp.score(Xt, yt) > 0.95

    def test_no_hyperopt_mode(self, rng):
        X = rng.uniform(size=(15, 1))
        y = X[:, 0]
        gp = GaussianProcessRegressor(optimize_hyperparams=False).fit(X, y)
        assert gp.score(X, y) > 0.9

    def test_predict_before_fit(self):
        with pytest.raises(ValidationError):
            GaussianProcessRegressor().predict([[0.0]])

    def test_noisy_data_recovers_noise(self, rng):
        X = rng.uniform(-2, 2, size=(120, 1))
        y = np.sin(X[:, 0]) + 0.2 * rng.normal(size=120)
        gp = GaussianProcessRegressor(random_state=0, n_restarts=2).fit(X, y)
        # normalized noise should be roughly (0.2 / y.std())^2
        expected = (0.2 / y.std()) ** 2
        assert gp.noise_ == pytest.approx(expected, rel=1.0)  # order of magnitude

"""Tests for the engine discrete-event simulation."""

import pytest

from repro.engine import (
    BASELINE_CONFIG,
    EngineModelParams,
    IdentificationEngine,
    ThreadPoolConfig,
    WorkloadSpec,
    simulate_engine,
)
from repro.engine.tasks import PIPELINE_ORDER, SERVICE_TASKS, TaskType


@pytest.fixture(scope="module")
def baseline_run():
    return simulate_engine(BASELINE_CONFIG, 80, duration=250.0, warmup=50.0, seed=7)


class TestPipeline:
    def test_table_i_order(self):
        assert [str(t) for t in PIPELINE_ORDER] == [
            "pre-process",
            "wait-download",
            "download",
            "wait-extract",
            "extract",
            "process",
            "wait-simsearch",
            "simsearch",
            "post-process",
        ]

    def test_all_tasks_observed(self, baseline_run):
        for task in TaskType:
            assert baseline_run.task_times[str(task)].count > 0, task

    def test_simsearch_dominates_service_tasks(self, baseline_run):
        """The paper: extraction and simsearch are the most time-consuming."""
        times = {str(t): baseline_run.task_times[str(t)].mean for t in SERVICE_TASKS}
        assert times["simsearch"] == max(times.values())
        assert times["extract"] > times["pre-process"]


class TestClosedLoop:
    def test_littles_law(self, baseline_run):
        """R = X · T must hold in a closed system with zero think time."""
        R = 80
        X = baseline_run.throughput
        T = baseline_run.user_response_time.mean
        assert X * T == pytest.approx(R, rel=0.05)

    def test_http_pool_saturated_when_R_exceeds_H(self, baseline_run):
        assert baseline_run.pool_busy["http"] == pytest.approx(1.0, abs=0.02)

    def test_underload_no_http_wait(self):
        result = simulate_engine(BASELINE_CONFIG, 10, duration=200.0, warmup=40.0, seed=1)
        # 10 clients against 40 HTTP threads: response == service time, low
        assert result.user_response_time.mean < 1.8
        assert result.pool_busy["http"] < 0.5

    def test_response_time_grows_with_load(self):
        r80 = simulate_engine(BASELINE_CONFIG, 80, duration=200.0, warmup=40.0, seed=2)
        r120 = simulate_engine(BASELINE_CONFIG, 120, duration=200.0, warmup=40.0, seed=2)
        r140 = simulate_engine(BASELINE_CONFIG, 140, duration=200.0, warmup=40.0, seed=2)
        assert r80.user_response_time.mean < r120.user_response_time.mean
        assert r120.user_response_time.mean < r140.user_response_time.mean


class TestDeterminism:
    def test_same_seed_same_result(self):
        a = simulate_engine(BASELINE_CONFIG, 30, duration=150.0, warmup=30.0, seed=5)
        b = simulate_engine(BASELINE_CONFIG, 30, duration=150.0, warmup=30.0, seed=5)
        assert a.user_response_time.mean == b.user_response_time.mean
        assert a.completed_requests == b.completed_requests

    def test_different_seed_different_result(self):
        a = simulate_engine(BASELINE_CONFIG, 30, duration=150.0, warmup=30.0, seed=5)
        b = simulate_engine(BASELINE_CONFIG, 30, duration=150.0, warmup=30.0, seed=6)
        assert a.user_response_time.mean != b.user_response_time.mean


class TestMetricsCollection:
    def test_sample_count(self):
        result = simulate_engine(BASELINE_CONFIG, 40, duration=200.0, warmup=40.0, seed=3)
        # samples every 10 s in (40, 200] → 16 post-warmup windows
        assert len(result.series.cpu_usage) == 16
        assert len(result.series.user_response_time) <= 16

    def test_gpu_memory_constant_during_run(self, baseline_run):
        values = baseline_run.series.gpu_memory_gb.values
        assert values.min() == values.max()

    def test_monitored_metrics_in_physical_ranges(self, baseline_run):
        assert 0.0 <= baseline_run.cpu_usage.mean <= 1.0
        assert 0.0 <= baseline_run.gpu_utilization.mean <= 1.0
        for name, busy in baseline_run.pool_busy.items():
            assert 0.0 <= busy <= 1.0 + 1e-9, name
        power = baseline_run.series.gpu_power_w.values
        assert (power >= 38.0).all() and (power <= 130.0).all()

    def test_to_dict_jsonable(self, baseline_run):
        import json

        payload = baseline_run.to_dict()
        json.dumps(payload)  # must not raise
        assert payload["config"]["extract"] == 7


class TestConfiguration:
    def test_gpu_memory_guard(self):
        params = EngineModelParams(gpu_total_memory_gb=8.0)
        with pytest.raises(ValueError, match="GPU memory"):
            IdentificationEngine(
                ThreadPoolConfig(40, 40, 9, 40),
                WorkloadSpec(simultaneous_requests=10, duration=50.0, warmup=0.0),
                params,
            )

    def test_zero_cv_deterministic_services(self):
        params = EngineModelParams(service_cv=0.0)
        result = simulate_engine(
            BASELINE_CONFIG, 20, duration=150.0, warmup=30.0, seed=9, params=params
        )
        # pre-process is near-deterministic at 20 clients (only the tiny
        # quasi-static inflation wiggle remains without service noise)
        assert result.task_times["pre-process"].std < 1e-4

    def test_client_rtt_added(self):
        from repro.testbed.network import NetworkPath

        slow_path = NetworkPath(hops=("edge", "cloud"), latency_ms=250.0, bandwidth_gbps=1.0, loss=0.0)
        near = simulate_engine(BASELINE_CONFIG, 20, duration=150.0, warmup=30.0, seed=4)
        far = simulate_engine(
            BASELINE_CONFIG, 20, duration=150.0, warmup=30.0, seed=4, client_path=slow_path
        )
        delta = far.user_response_time.mean - near.user_response_time.mean
        assert delta == pytest.approx(0.5, abs=0.05)  # one RTT of 2×250 ms


class TestFastLane:
    """The raw-number delay fast lane must be byte-identical to events."""

    def _pair(self, **workload_kwargs):
        results = []
        for fast_lane in (True, False):
            engine = IdentificationEngine(
                BASELINE_CONFIG,
                WorkloadSpec(**workload_kwargs),
                seed=7,
                fast_lane=fast_lane,
            )
            results.append(engine.run())
        return results

    def test_closed_loop_byte_identical(self):
        fast, slow = self._pair(
            simultaneous_requests=20, duration=150.0, warmup=30.0
        )
        assert fast.user_response_time == slow.user_response_time
        assert fast.throughput == slow.throughput
        assert fast.completed_requests == slow.completed_requests
        assert fast.task_times == slow.task_times
        assert fast.response_percentiles == slow.response_percentiles

    def test_open_loop_byte_identical(self):
        fast, slow = self._pair(
            simultaneous_requests=20,
            arrival_rate=8.0,
            duration=120.0,
            warmup=20.0,
        )
        assert fast.user_response_time == slow.user_response_time
        assert fast.completed_requests == slow.completed_requests
        assert fast.task_times == slow.task_times

    def test_simulate_engine_default_is_fast(self):
        default = simulate_engine(BASELINE_CONFIG, 20, duration=120.0, warmup=20.0, seed=3)
        slow = simulate_engine(
            BASELINE_CONFIG, 20, duration=120.0, warmup=20.0, seed=3, fast_lane=False
        )
        assert default.user_response_time == slow.user_response_time

"""Tests for the CART tree and its Extra-Trees splitter."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ValidationError
from repro.surrogate import DecisionTreeRegressor
from repro.surrogate.base import check_fit_inputs


class TestFitInputs:
    def test_shape_checks(self):
        with pytest.raises(ValidationError):
            check_fit_inputs(np.zeros(3), np.zeros(3))  # 1-D X
        with pytest.raises(ValidationError):
            check_fit_inputs(np.zeros((3, 2)), np.zeros(4))
        with pytest.raises(ValidationError):
            check_fit_inputs(np.zeros((0, 2)), np.zeros(0))
        with pytest.raises(ValidationError):
            check_fit_inputs([[np.nan, 1.0]], [1.0])


class TestDecisionTree:
    def test_fits_training_data_exactly_when_unbounded(self, rng):
        X = rng.uniform(size=(50, 2))
        y = rng.normal(size=50)
        tree = DecisionTreeRegressor().fit(X, y)
        assert tree.predict(X) == pytest.approx(y, abs=1e-12)

    def test_max_depth_limits(self, rng):
        X = rng.uniform(size=(200, 2))
        y = rng.normal(size=200)
        tree = DecisionTreeRegressor(max_depth=3).fit(X, y)
        assert tree.depth <= 3

    def test_min_samples_leaf(self, rng):
        X = rng.uniform(size=(100, 1))
        y = rng.normal(size=100)
        tree = DecisionTreeRegressor(min_samples_leaf=10).fit(X, y)
        leaves = tree.apply(X)
        _, counts = np.unique(leaves, return_counts=True)
        assert counts.min() >= 10

    def test_constant_target_single_leaf(self):
        X = np.arange(20, dtype=float).reshape(-1, 1)
        tree = DecisionTreeRegressor().fit(X, np.ones(20))
        assert tree.node_count == 1
        assert tree.predict([[5.0]])[0] == 1.0

    def test_learns_step_function(self):
        X = np.linspace(0, 1, 100).reshape(-1, 1)
        y = (X[:, 0] > 0.5).astype(float)
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        assert tree.predict([[0.2]])[0] == 0.0
        assert tree.predict([[0.9]])[0] == 1.0
        # the split should land near 0.5
        assert abs(tree.threshold_[0] - 0.5) < 0.02

    def test_random_splitter_also_learns(self, rng):
        X = rng.uniform(size=(300, 2))
        y = 2.0 * X[:, 0] + X[:, 1]
        tree = DecisionTreeRegressor(splitter="random", random_state=0).fit(X, y)
        assert tree.score(X, y) > 0.9

    def test_predict_before_fit(self):
        with pytest.raises(ValidationError):
            DecisionTreeRegressor().predict([[1.0]])

    def test_feature_count_checked(self, rng):
        tree = DecisionTreeRegressor().fit(rng.uniform(size=(10, 2)), rng.normal(size=10))
        with pytest.raises(ValidationError):
            tree.predict([[1.0, 2.0, 3.0]])

    def test_set_leaf_values(self, rng):
        X = rng.uniform(size=(20, 1))
        y = rng.normal(size=20)
        tree = DecisionTreeRegressor(max_depth=1).fit(X, y)
        leaves = np.unique(tree.apply(X))
        tree.set_leaf_values({int(leaf): 42.0 for leaf in leaves})
        assert (tree.predict(X) == 42.0).all()

    def test_set_leaf_values_rejects_internal_node(self, rng):
        X = rng.uniform(size=(50, 1))
        y = X[:, 0]
        tree = DecisionTreeRegressor(max_depth=2).fit(X, y)
        if tree.node_count > 1:
            with pytest.raises(ValidationError):
                tree.set_leaf_values({0: 1.0})

    def test_param_validation(self):
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(max_depth=0)
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(min_samples_split=1)
        with pytest.raises(ValidationError):
            DecisionTreeRegressor(splitter="weird")

    @given(
        n=st.integers(5, 60),
        seed=st.integers(0, 100),
        splitter=st.sampled_from(["best", "random"]),
    )
    @settings(max_examples=25, deadline=None)
    def test_predictions_within_target_range(self, n, seed, splitter):
        """Tree predictions are convex combinations of training targets."""
        rng = np.random.default_rng(seed)
        X = rng.uniform(size=(n, 2))
        y = rng.normal(size=n)
        tree = DecisionTreeRegressor(splitter=splitter, random_state=seed).fit(X, y)
        preds = tree.predict(rng.uniform(size=(30, 2)))
        assert (preds >= y.min() - 1e-9).all()
        assert (preds <= y.max() + 1e-9).all()

"""Tests for the observability layer: tracing, metrics, profiling, report."""

import json
import math
import threading

import pytest

from repro import simcore
from repro.bayesopt import Integer, Space
from repro.errors import ValidationError
from repro.monitoring import MetricCollector
from repro.observability import (
    CostBreakdown,
    MetricsRegistry,
    NoopTracer,
    NullRegistry,
    RecordingTracer,
    Span,
    aggregate_costs,
    get_registry,
    get_tracer,
    load_run,
    load_spans,
    render_report,
    set_registry,
    set_tracer,
    tracing,
)
from repro.search import RandomSearch, run


@pytest.fixture(autouse=True)
def _clean_globals():
    """Never leak a tracer/registry into other tests."""
    yield
    set_tracer(None)
    set_registry(None)


def _space():
    return Space([Integer(0, 30, name="a"), Integer(0, 10, name="b")])


def _objective(config):
    return (config["a"] - 21) ** 2 + (config["b"] - 4) ** 2


class TestTracer:
    def test_default_is_noop(self):
        tracer = get_tracer()
        assert isinstance(tracer, NoopTracer)
        assert not tracer.enabled
        with tracer.span("anything", attr=1) as span:
            assert span.set("k", "v") is span  # chainable, absorbed
        assert tracer.current() is None

    def test_noop_allocates_nothing(self):
        tracer = NoopTracer()
        assert tracer.span("a") is tracer.span("b")  # shared context
        assert tracer.start_span("a") is tracer.start_span("b")  # shared span

    def test_nesting_and_parents(self):
        tracer = RecordingTracer()
        with tracer.span("outer") as outer:
            with tracer.span("inner") as inner:
                assert tracer.current() is inner
            assert tracer.current() is outer
        spans = {s.name: s for s in tracer.finished()}
        assert spans["outer"].parent_id is None
        assert spans["inner"].parent_id == spans["outer"].span_id
        assert spans["inner"].duration_s <= spans["outer"].duration_s

    def test_error_status(self):
        tracer = RecordingTracer()
        with pytest.raises(RuntimeError):
            with tracer.span("doomed"):
                raise RuntimeError("kaput")
        (span,) = tracer.finished()
        assert span.status == "error"
        assert "kaput" in span.error

    def test_explicit_parent_cross_thread(self):
        tracer = RecordingTracer()
        parent = tracer.start_span("root")

        def worker():
            with tracer.span("child", parent=parent):
                pass

        t = threading.Thread(target=worker)
        t.start()
        t.join()
        tracer.end_span(parent)
        spans = {s.name: s for s in tracer.finished()}
        assert spans["child"].parent_id == spans["root"].span_id

    def test_backdated_start(self):
        tracer = RecordingTracer()
        now = tracer.clock()
        span = tracer.start_span("late", start=now - 5.0)
        tracer.end_span(span)
        assert span.duration_s >= 5.0

    def test_sim_clock(self):
        sim_now = [0.0]
        tracer = RecordingTracer()
        with tracer.span("sim", sim_clock=lambda: sim_now[0]) as span:
            sim_now[0] = 42.0
        assert span.sim_start == 0.0
        assert span.sim_end == 42.0
        assert span.sim_duration == 42.0
        assert "_sim_clock" not in span.attributes  # popped at end

    def test_jsonl_roundtrip(self, tmp_path):
        tracer = RecordingTracer()
        with tracer.span("a", answer=42):
            with tracer.span("b"):
                pass
        path = tracer.export_jsonl(tmp_path / "spans.jsonl")
        loaded = load_spans(path)
        assert [s.name for s in loaded] == ["b", "a"]  # completion order
        assert loaded[1].attributes == {"answer": 42}
        assert all(isinstance(s, Span) for s in loaded)

    def test_tracing_context_restores_previous(self):
        before = get_tracer()
        with tracing() as tracer:
            assert get_tracer() is tracer
            assert tracer.enabled
        assert get_tracer() is before


class TestMetricsRegistry:
    def test_counter(self):
        reg = MetricsRegistry()
        c = reg.counter("hits", "hit count")
        c.inc()
        c.inc(2.5)
        assert c.value() == 3.5
        with pytest.raises(ValidationError):
            c.inc(-1)

    def test_gauge_labels(self):
        reg = MetricsRegistry()
        g = reg.gauge("depth", labelnames=("pool",))
        g.set(3, pool="http")
        g.inc(pool="http")
        g.dec(2, pool="http")
        assert g.value(pool="http") == 2.0
        assert math.isnan(g.value(pool="unseen"))
        with pytest.raises(ValidationError):
            g.set(1)  # missing required label

    def test_histogram_snapshot(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0, 10.0))
        for v in (0.5, 0.7, 5.0, 100.0):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == pytest.approx(106.2)
        assert snap["buckets"]["1.0"] == 2
        assert snap["buckets"]["10.0"] == 3
        assert snap["buckets"]["+Inf"] == 4

    def test_get_or_create_and_kind_conflict(self):
        reg = MetricsRegistry()
        assert reg.counter("x") is reg.counter("x")
        with pytest.raises(ValidationError):
            reg.gauge("x")

    def test_prometheus_rendering(self):
        reg = MetricsRegistry()
        reg.counter("evals_total", "evals").inc(3)
        reg.gauge("busy", labelnames=("pool",)).set(0.5, pool="http")
        reg.histogram("secs", buckets=(1.0,)).observe(0.2)
        text = reg.render_prometheus()
        assert "# TYPE evals_total counter" in text
        assert "evals_total 3.0" in text
        assert 'busy{pool="http"} 0.5' in text
        assert 'secs_bucket{le="1.0"} 1' in text
        assert 'secs_bucket{le="+Inf"} 1' in text
        assert "secs_count 1" in text

    def test_json_export(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("n").inc(7)
        data = json.loads((reg.export_json(tmp_path / "m.json")).read_text())
        (metric,) = data["metrics"]
        assert metric["name"] == "n"
        assert metric["series"][0]["value"] == 7.0

    def test_null_registry_is_inert(self):
        reg = NullRegistry()
        assert not reg.enabled
        assert reg.counter("a") is reg.gauge("b") is reg.histogram("c")
        reg.counter("a").inc()  # absorbed
        assert reg.to_dict() == {"metrics": []}


class TestCostBreakdown:
    def test_aggregate_and_fractions(self):
        costs = [
            {"suggest_s": 1.0, "evaluate_s": 8.0, "tell_s": 1.0},
            {"suggest_s": 1.0, "evaluate_s": 8.0},
        ]
        agg = aggregate_costs(costs)
        assert agg.trials == 2
        assert agg.total_s == pytest.approx(19.0)
        assert agg.fractions()["evaluate_s"] == pytest.approx(16.0 / 19.0)
        d = agg.to_dict()
        assert d["trials"] == 2
        assert d["mean_per_trial"]["suggest_s"] == pytest.approx(1.0)

    def test_empty(self):
        agg = aggregate_costs([])
        assert agg == CostBreakdown()
        assert agg.total_s == 0.0
        assert all(v == 0.0 for v in agg.fractions().values())


class TestLoopStats:
    def test_disabled_by_default(self):
        env = simcore.Environment()
        assert env.stats is None

    def test_counts_events_and_depth(self):
        env = simcore.Environment()
        stats = env.enable_stats()

        def proc(env):
            for _ in range(5):
                yield env.timeout(1.0)

        env.process(proc(env))
        env.process(proc(env))
        env.run()
        assert stats.events_processed > 0
        assert stats.max_queue_depth >= 1
        snap = stats.snapshot(env.now)
        assert snap["events_processed"] == stats.events_processed
        assert snap["wall_s"] >= 0.0
        assert "sim_wall_ratio" in snap


class TestCollectorBridge:
    def _env_with_collector(self, **kwargs):
        env = simcore.Environment()
        value = [0.0]

        def proc(env):
            while True:
                yield env.timeout(1.0)
                value[0] += 1.0

        env.process(proc(env))
        collector = MetricCollector(env, interval=10.0, **kwargs)
        collector.add_probe("v", lambda: value[0])
        collector.start()
        return env, collector

    def test_sample_at_start_adds_t0_sample(self):
        env, collector = self._env_with_collector()
        env.run(until=90.0)
        baseline = len(collector.series["v"])

        env2, collector2 = self._env_with_collector(sample_at_start=True)
        env2.run(until=90.0)
        assert len(collector2.series["v"]) == baseline + 1
        assert collector2.series["v"].times[0] == 0.0

    def test_publishes_into_registry(self):
        reg = MetricsRegistry()
        env, collector = self._env_with_collector(sample_at_start=True, registry=reg)
        env.run(until=30.0)
        gauge = reg.gauge("monitor_probe_value", labelnames=("probe",))
        assert gauge.value(probe="v") == collector.series["v"].values[-1]
        assert reg.counter("monitor_samples_total").value() == len(collector.series["v"])

    def test_defaults_to_global_null_registry(self):
        env, collector = self._env_with_collector()
        env.run(until=30.0)  # publishing into the NullRegistry is a no-op
        assert len(collector.series["v"]) == 2  # t=10, t=20; no t=0 sample


class TestRunnerTracing:
    def test_spans_and_costs_per_trial(self):
        with tracing() as tracer:
            analysis = run(
                _objective,
                search_alg=RandomSearch(_space(), seed=0),
                metric="loss",
                num_samples=4,
            )
        spans = tracer.finished()
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, []).append(s)
        trial_spans = [s for s in spans if s.name.startswith("trial:")]
        assert len(trial_spans) == 4
        assert len(by_name["suggest"]) == 4
        assert len(by_name["execute"]) == 4
        assert len(by_name["tell"]) == 4
        trial_ids = {s.span_id for s in trial_spans}
        for child in by_name["suggest"] + by_name["execute"] + by_name["tell"]:
            assert child.parent_id in trial_ids
        for trial in analysis.trials:
            assert set(trial.cost) == {"suggest_s", "evaluate_s", "tell_s"}
        profile = analysis.cost_profile()
        assert profile.trials == 4
        assert profile.total_s > 0

    def test_trial_span_status_on_error(self):
        def bad(config):
            raise RuntimeError("nope")

        with tracing() as tracer:
            run(bad, search_alg=RandomSearch(_space(), seed=0), metric="loss", num_samples=2)
        trial_spans = [s for s in tracer.finished() if s.name.startswith("trial:")]
        assert all(s.attributes["status"] == "error" for s in trial_spans)

    def test_thread_executor_spans_keep_parentage(self):
        with tracing() as tracer:
            run(
                _objective,
                space=_space(),
                metric="loss",
                num_samples=6,
                executor="thread",
                max_workers=3,
                seed=1,
            )
        spans = tracer.finished()
        trial_ids = {s.span_id for s in spans if s.name.startswith("trial:")}
        assert len(trial_ids) == 6
        executes = [s for s in spans if s.name == "execute"]
        assert len(executes) == 6
        assert all(s.parent_id in trial_ids for s in executes)

    def test_untraced_run_records_costs_but_no_spans(self):
        analysis = run(
            _objective, search_alg=RandomSearch(_space(), seed=0), metric="loss", num_samples=3
        )
        assert isinstance(get_tracer(), NoopTracer)
        for trial in analysis.trials:
            assert trial.cost["evaluate_s"] >= 0.0


class TestAnalysisNanHandling:
    def test_objective_history_skips_nan(self):
        calls = [0]

        def sometimes_nan(config):
            calls[0] += 1
            return math.nan if calls[0] % 2 == 0 else float(calls[0])

        analysis = run(
            sometimes_nan,
            search_alg=RandomSearch(_space(), seed=0),
            metric="loss",
            num_samples=6,
        )
        history = analysis.objective_history()
        assert len(history) == 3
        assert all(v == v for v in history)


class TestEnginePublishing:
    def test_engine_run_exports_spans_and_metrics(self):
        from repro.engine import BASELINE_CONFIG, simulate_engine

        reg = MetricsRegistry()
        set_registry(reg)
        with tracing() as tracer:
            simulate_engine(BASELINE_CONFIG, 20, duration=60.0, warmup=10.0, seed=3)
        spans = {s.name: s for s in tracer.finished()}
        assert "engine.run" in spans
        run_span = spans["engine.run"]
        assert run_span.sim_duration == pytest.approx(60.0)
        assert run_span.attributes["events_processed"] > 0
        pool_spans = [s for s in spans.values() if s.name.startswith("pool:")]
        assert {s.name for s in pool_spans} == {
            "pool:http",
            "pool:download",
            "pool:extract",
            "pool:simsearch",
        }
        assert all(s.parent_id == run_span.span_id for s in pool_spans)
        assert reg.counter("engine_requests_completed_total").value() > 0
        assert reg.gauge("engine_pool_busy", labelnames=("pool",)).value(pool="http") >= 0.0
        assert reg.counter("engine_loop_events_total").value() > 0

    def test_engine_untraced_no_stats_overhead(self):
        from repro.engine import BASELINE_CONFIG, simulate_engine

        result = simulate_engine(BASELINE_CONFIG, 10, duration=40.0, warmup=5.0, seed=4)
        assert result.completed_requests > 0


class TestManagerEndToEnd:
    def _conf(self, tmp_path):
        from repro.optimizer import OptimizerConf

        return OptimizerConf.from_dict(
            {
                "name": "obs_e2e",
                "variables": [
                    {"name": "a", "type": "integer", "low": 0, "high": 20},
                    {"name": "b", "type": "integer", "low": 0, "high": 20},
                ],
                "objectives": [{"metric": "loss", "mode": "min"}],
                "algorithm": {"search": "random"},
                "num_samples": 5,
                "seed": 0,
                "repeat": 1,
                "workdir": str(tmp_path),
                "observability": True,
            }
        )

    @staticmethod
    def _evaluator(config, seed=None, duration=None):
        return {"loss": (config["a"] - 7) ** 2 + (config["b"] - 3) ** 2}

    def test_traced_campaign_exports_and_reports(self, tmp_path, capsys):
        from repro.cli import main
        from repro.optimizer import OptimizationManager

        manager = OptimizationManager(self._conf(tmp_path), evaluator=self._evaluator)
        outcome = manager.run()
        run_dir = manager.run_dir

        # observability disabled again after the run
        assert isinstance(get_tracer(), NoopTracer)
        assert not get_registry().enabled

        spans = load_spans(run_dir / "spans.jsonl")
        names = {s.name for s in spans}
        assert "phase:optimize" in names
        assert "phase:validate" in names
        assert "experiment:obs_e2e" in names
        assert any(n.startswith("trial:") for n in names)
        assert any(n.startswith("cycle:") for n in names)
        assert any(n.startswith("validation:rep") for n in names)

        metrics = json.loads((run_dir / "metrics.json").read_text())
        by_name = {m["name"]: m for m in metrics["metrics"]}
        assert by_name["repro_evaluations_total"]["series"][0]["value"] == 5.0
        assert by_name["repro_validation_runs_total"]["series"][0]["value"] == 2.0
        assert "repro_best_value" in by_name
        assert (run_dir / "metrics.prom").read_text().startswith("# ")

        # the summary folds in the cost profile
        assert outcome.summary.cost_profile["trials"] == 5
        assert "cost profile" in outcome.summary.render()

        # the report CLI renders everything
        rc = main(["report", str(run_dir)])
        assert rc == 0
        out = capsys.readouterr().out
        assert "phase:optimize" in out
        assert "--- trials" in out
        assert "slowest spans" in out
        assert "--- metric rollups ---" in out
        assert "repro_evaluations_total" in out

    def test_untraced_campaign_exports_nothing(self, tmp_path):
        from repro.optimizer import OptimizationManager

        conf = self._conf(tmp_path)
        conf.observability = False
        manager = OptimizationManager(conf, evaluator=self._evaluator)
        outcome = manager.run()
        assert not (manager.run_dir / "spans.jsonl").exists()
        assert not (manager.run_dir / "metrics.json").exists()
        # cost profile is still recorded (cheap, always on)
        assert outcome.summary.cost_profile["trials"] == 5

    def test_load_run_requires_artifacts(self, tmp_path):
        with pytest.raises(ValidationError):
            load_run(tmp_path)

    def test_render_report_from_loaded_artifacts(self, tmp_path):
        from repro.optimizer import OptimizationManager

        manager = OptimizationManager(self._conf(tmp_path), evaluator=self._evaluator)
        manager.run()
        artifacts = load_run(manager.run_dir)
        text = render_report(artifacts, top_k=3)
        assert "=== run report" in text
        assert "obs_e2e" in text
        assert "top 3 slowest spans" in text


class TestNullInstrumentParity:
    """Every read-side method a real instrument has must exist on the null one."""

    def test_null_histogram_snapshot(self):
        reg = NullRegistry()
        snap = reg.histogram("h").snapshot()
        assert snap["count"] == 0
        assert snap["sum"] == 0.0
        assert math.isnan(snap["mean"])
        assert snap["buckets"] == {}
        # labeled access works too (gauges/counters share the instrument).
        assert reg.gauge("g").snapshot(pool="http")["count"] == 0

    def test_null_series_and_to_dict(self):
        reg = NullRegistry()
        assert reg.counter("c").series() == []
        assert reg.counter("c").to_dict()["series"] == []


class TestPrometheusHistogramBuckets:
    def test_labeled_buckets_are_cumulative_and_scrapable(self):
        reg = MetricsRegistry()
        h = reg.histogram("wait_seconds", "waits", ("pool",), buckets=(0.1, 1.0, 10.0))
        for pool, values in {
            "http": (0.05, 0.5, 0.7, 5.0, 100.0),
            "extract": (0.01, 0.02),
        }.items():
            for v in values:
                h.observe(v, pool=pool)
        text = reg.render_prometheus()
        # per-label cumulative series, monotonically non-decreasing per le.
        for pool, counts in {"http": [1, 3, 4, 5], "extract": [2, 2, 2, 2]}.items():
            rendered = []
            for le in ("0.1", "1.0", "10.0", "+Inf"):
                line = next(
                    ln
                    for ln in text.splitlines()
                    if ln.startswith("wait_seconds_bucket")
                    and f'le="{le}"' in ln
                    and f'pool="{pool}"' in ln
                )
                rendered.append(int(float(line.rsplit(" ", 1)[1])))
            assert rendered == counts
            assert rendered == sorted(rendered)  # cumulative => monotone
            # +Inf equals the series count line.
            count_line = next(
                ln
                for ln in text.splitlines()
                if ln.startswith("wait_seconds_count") and f'pool="{pool}"' in ln
            )
            assert int(float(count_line.rsplit(" ", 1)[1])) == rendered[-1]

    def test_series_copies_state_for_exporters(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat", buckets=(1.0,))
        h.observe(0.5)
        ((labels, value),) = h.series()
        assert labels == {}
        assert value["count"] == 1
        h.observe(0.6)  # the exported snapshot must be a copy, not a view
        assert value["count"] == 1


class TestQueueWaitSpans:
    def test_threaded_runner_emits_queue_wait(self):
        from repro.search import TrialRunner

        tracer = RecordingTracer()
        set_tracer(tracer)
        runner = TrialRunner(
            lambda config: {"objective": float(config["a"])},
            RandomSearch(_space(), seed=5),
            metric="objective",
            num_samples=4,
            executor="thread",
            max_workers=2,
        )
        runner.run()
        waits = [s for s in tracer.finished() if s.name == "queue-wait"]
        assert waits, "threaded runs must record queue-wait spans"
        assert all("trial_id" in s.attributes for s in waits)
        assert all(s.duration_s >= 0 for s in waits)
        trials = [s for s in tracer.finished() if s.name.startswith("trial:")]
        assert len(waits) == len(trials)


class TestExportedAnalyticsArtifacts:
    def test_traced_export_includes_timeline_and_trace_events(self, tmp_path):
        from repro.optimizer import OptimizationManager, OptimizerConf

        conf = OptimizerConf.from_dict(
            {
                "name": "artifacts",
                "variables": [{"name": "x", "type": "integer", "low": 0, "high": 5}],
                "objectives": [{"metric": "latency", "mode": "min"}],
                "algorithm": {"search": "random"},
                "num_samples": 3,
                "seed": 0,
                "workdir": str(tmp_path),
                "observability": True,
            }
        )
        manager = OptimizationManager(
            conf, evaluator=lambda config, **kw: {"latency": 1.0}
        )
        manager.run()
        assert (manager.run_dir / "trace_events.json").exists()
        assert (manager.run_dir / "timeline.html").exists()
        document = json.loads((manager.run_dir / "trace_events.json").read_text())
        assert document["traceEvents"]

"""Tests for the fast evaluation path: canonical hashing, the EvalCache,
its runner integration, and the cache × resume × faults interplay."""

import json

import pytest

from repro.errors import ValidationError
from repro.faults.context import mark_injection
from repro.optimizer import OptimizationManager, OptimizerConf
from repro.search import TrialRunner, TrialStatus
from repro.search.algos import SearchAlgorithm
from repro.search.evalcache import EvalCache
from repro.utils.serialization import canonical_config, config_hash


class ReplaySearch(SearchAlgorithm):
    """Proposes a fixed configuration sequence; records every tell."""

    def __init__(self, sequence):
        self._sequence = list(sequence)
        self._i = 0
        self.tells = []

    def suggest(self, trial_id):
        if self._i >= len(self._sequence):
            return None
        config = dict(self._sequence[self._i])
        self._i += 1
        return config

    def on_trial_complete(self, trial_id, config, value):
        self.tells.append((trial_id, dict(config), value))


class TestCanonicalConfig:
    def test_whole_floats_collapse_to_ints(self):
        assert canonical_config({"x": 5.0}) == {"x": 5}
        assert canonical_config({"x": 5.5}) == {"x": 5.5}

    def test_tuples_become_lists(self):
        assert canonical_config((1, 2.0, "a")) == [1, 2, "a"]

    def test_bools_survive(self):
        assert canonical_config(True) is True
        assert config_hash(True) != config_hash(1)

    def test_key_order_irrelevant(self):
        assert config_hash({"a": 1, "b": 2}) == config_hash({"b": 2, "a": 1})

    def test_numeric_drift_collides(self):
        assert config_hash({"http": 80}) == config_hash({"http": 80.0})
        assert config_hash({"http": 80}) != config_hash({"http": 81})

    def test_extra_parts_change_the_hash(self):
        assert config_hash({"x": 1}) != config_hash({"x": 1}, "fingerprint")


class TestEvalCache:
    def test_min_replicates_validated(self):
        with pytest.raises(ValidationError):
            EvalCache(min_replicates=0)

    def test_miss_store_hit(self):
        cache = EvalCache()
        assert cache.lookup({"x": 1}) is None
        assert cache.store({"x": 1}, {"objective": 2.5})
        hit = cache.lookup({"x": 1})
        assert hit == {"objective": 2.5}
        hit["objective"] = 0.0  # a copy, not the stored dict
        assert cache.lookup({"x": 1}) == {"objective": 2.5}
        assert cache.stats() == {
            "hits": 2, "misses": 1, "stores": 1, "rejected": 0, "corrupt": 0,
            "entries": 1,
        }

    def test_int_float_configs_share_entries(self):
        cache = EvalCache()
        cache.store({"x": 2}, {"objective": 1.0})
        assert cache.lookup({"x": 2.0}) == {"objective": 1.0}

    def test_fingerprint_separates_scenarios(self):
        a = EvalCache(fingerprint={"seed": 1})
        b = EvalCache(fingerprint={"seed": 2})
        assert a.key({"x": 1}) != b.key({"x": 1})

    def test_tainted_results_refused(self):
        cache = EvalCache()
        assert not cache.store({"x": 1}, {"objective": 1.0}, tainted=True)
        assert cache.lookup({"x": 1}) is None
        assert cache.stats()["rejected"] == 1

    def test_min_replicates_gate(self):
        cache = EvalCache(min_replicates=2)
        cache.store({"x": 1}, {"objective": 1.0})
        assert cache.lookup({"x": 1}) is None  # quota not met: keep measuring
        cache.store({"x": 1}, {"objective": 3.0})
        # Served from the first replicate, deterministically.
        assert cache.lookup({"x": 1}) == {"objective": 1.0}

    def test_jsonl_persistence_round_trip(self, tmp_path):
        path = tmp_path / "evalcache.jsonl"
        first = EvalCache(path=path, fingerprint={"seed": 7})
        first.store({"x": 1}, {"objective": 1.5})
        first.store({"x": 2}, {"objective": 2.5})
        warm = EvalCache(path=path, fingerprint={"seed": 7})
        assert len(warm) == 2
        assert warm.lookup({"x": 1}) == {"objective": 1.5}

    def test_torn_tail_line_tolerated(self, tmp_path):
        path = tmp_path / "evalcache.jsonl"
        cache = EvalCache(path=path)
        cache.store({"x": 1}, {"objective": 1.0})
        with path.open("a") as handle:
            handle.write('{"key": "torn')  # crashed mid-write
        reloaded = EvalCache(path=path)
        assert len(reloaded) == 1


class TestRunnerIntegration:
    def test_duplicates_served_from_cache(self):
        calls = []

        def evaluator(config):
            calls.append(dict(config))
            return {"objective": float(config["x"])}

        sequence = [{"x": 1}, {"x": 2}, {"x": 1}, {"x": 2}, {"x": 1}]
        search = ReplaySearch(sequence)
        cache = EvalCache()
        runner = TrialRunner(
            evaluator, search, metric="objective", num_samples=len(sequence),
            eval_cache=cache,
        )
        analysis = runner.run()
        assert len(calls) == 2  # one real evaluation per unique config
        assert len(analysis.trials) == len(sequence)
        hits = [t for t in analysis.trials if t.cost.get("cache_hit")]
        assert len(hits) == 3
        for trial in hits:
            assert trial.status is TrialStatus.TERMINATED
            assert trial.cost["evaluate_s"] == 0.0
            assert trial.result["objective"] == float(trial.config["x"])
        # Every trial — cached or not — tells the searcher exactly once.
        assert len(search.tells) == len(sequence)
        assert analysis.cost_profile().cache_hits == 3

    def test_thread_executor_all_hit_batches_refill(self):
        """A batch served entirely from the cache must not end the campaign."""
        def evaluator(config):
            return {"objective": float(config["x"])}

        sequence = [{"x": 1}, {"x": 2}, {"x": 1}, {"x": 1}, {"x": 1}, {"x": 3}]
        search = ReplaySearch(sequence)
        runner = TrialRunner(
            evaluator, search, metric="objective", num_samples=len(sequence),
            executor="thread", max_workers=2, eval_cache=EvalCache(),
        )
        analysis = runner.run()
        assert len(analysis.trials) == len(sequence)
        assert len(search.tells) == len(sequence)

    def test_fault_injected_results_never_admitted(self):
        def evaluator(config):
            mark_injection()  # what FaultInjector.wrap records on any fault
            return {"objective": 1.0}

        sequence = [{"x": 1}, {"x": 1}, {"x": 1}]
        cache = EvalCache()
        runner = TrialRunner(
            evaluator, ReplaySearch(sequence), metric="objective",
            num_samples=len(sequence), eval_cache=cache,
        )
        analysis = runner.run()
        assert cache.stats()["stores"] == 0
        assert all(not t.cost.get("cache_hit") for t in analysis.trials)

    def test_retried_results_never_admitted(self):
        attempts = {"n": 0}

        def flaky(config):
            attempts["n"] += 1
            if attempts["n"] % 2 == 1:
                raise RuntimeError("flaky")
            return {"objective": 1.0}

        sequence = [{"x": 1}, {"x": 1}]
        cache = EvalCache()
        runner = TrialRunner(
            flaky, ReplaySearch(sequence), metric="objective",
            num_samples=len(sequence), max_retries=1, eval_cache=cache,
        )
        runner.run()
        assert cache.stats()["stores"] == 0

    def test_error_trials_never_admitted(self):
        def broken(config):
            raise RuntimeError("boom")

        cache = EvalCache()
        runner = TrialRunner(
            broken, ReplaySearch([{"x": 1}]), metric="objective",
            num_samples=1, eval_cache=cache,
        )
        runner.run()
        assert cache.stats() == {
            "hits": 0, "misses": 1, "stores": 0, "rejected": 0, "corrupt": 0,
            "entries": 0,
        }


def _conf_dict(workdir, num_samples=6, **extra):
    data = {
        "name": "cache_campaign",
        # A degenerate space: every proposal is {"x": 0}, so everything
        # after the first evaluation is a guaranteed duplicate.
        "variables": [{"name": "x", "type": "integer", "low": 0, "high": 0}],
        "objectives": [{"metric": "latency", "mode": "min"}],
        "algorithm": {"search": "random"},
        "num_samples": num_samples,
        "seed": 3,
        "workdir": str(workdir),
        "eval_cache": {"enabled": True},
    }
    data.update(extra)
    return data


class TestConfWiring:
    def test_unknown_cache_keys_rejected(self, tmp_path):
        with pytest.raises(ValidationError, match="eval_cache"):
            OptimizerConf.from_dict(_conf_dict(tmp_path, eval_cache={"bogus": 1}))

    def test_disabled_block_builds_nothing(self, tmp_path):
        conf = OptimizerConf.from_dict(
            _conf_dict(tmp_path, eval_cache={"enabled": False})
        )
        assert conf.build_eval_cache() is None

    def test_seed_is_part_of_the_fingerprint(self, tmp_path):
        a = OptimizerConf.from_dict(_conf_dict(tmp_path, seed=1)).build_eval_cache()
        b = OptimizerConf.from_dict(_conf_dict(tmp_path, seed=2)).build_eval_cache()
        assert a.key({"x": 0}) != b.key({"x": 0})

    def test_round_trips_through_to_dict(self, tmp_path):
        conf = OptimizerConf.from_dict(
            _conf_dict(tmp_path, eval_cache={"min_replicates": 2})
        )
        clone = OptimizerConf.from_dict(conf.to_dict())
        assert clone.eval_cache == {"min_replicates": 2}


class TestCampaignAndResume:
    def test_campaign_evaluates_each_unique_config_once(self, tmp_path):
        calls = {"n": 0}

        def evaluator(config, seed=None, duration=None):
            calls["n"] += 1
            return {"latency": 1.0 + config["x"]}

        manager = OptimizationManager(
            OptimizerConf.from_dict(_conf_dict(tmp_path, num_samples=6)),
            evaluator=evaluator,
        )
        outcome = manager.run()
        assert calls["n"] == 1  # five duplicates served from the cache
        assert outcome.summary.n_evaluations == 6
        assert outcome.summary.cost_profile["cache_hits"] == 5
        ledger = manager.run_dir / "evalcache.jsonl"
        assert ledger.exists()
        assert len(ledger.read_text().splitlines()) == 1

    def test_resume_replays_cached_hits_exactly_once(self, tmp_path):
        calls = {"n": 0}

        def evaluator(config, seed=None, duration=None):
            calls["n"] += 1
            return {"latency": 2.0}

        first = OptimizationManager(
            OptimizerConf.from_dict(_conf_dict(tmp_path, num_samples=4)),
            evaluator=evaluator,
        )
        first.run()
        assert calls["n"] == 1

        # Resume to the full budget: checkpointed trials replay through
        # tell() (no re-execution), and the 4 fresh trials all hit the
        # JSONL-warmed cache — the evaluator never runs again.
        second = OptimizationManager(
            OptimizerConf.from_dict(_conf_dict(tmp_path, num_samples=8)),
            evaluator=evaluator,
            resume_from=first.run_dir,
        )
        outcome = second.run()
        assert calls["n"] == 1
        assert outcome.summary.n_evaluations == 8
        # Objective history counts every trial exactly once — resumed
        # trials and cache hits never double-report.
        assert len(outcome.summary.evaluations) == 8
        # The warm cache still holds exactly the one stored evaluation.
        ledger = second.run_dir / "evalcache.jsonl"
        assert len(ledger.read_text().splitlines()) == 1

    def test_faulty_campaign_admits_nothing(self, tmp_path):
        def evaluator(config, seed=None, duration=None):
            return {"latency": 1.0}

        manager = OptimizationManager(
            OptimizerConf.from_dict(
                _conf_dict(
                    tmp_path, num_samples=5,
                    faults={"straggler": 1.0, "straggler_delay_s": 0.0},
                )
            ),
            evaluator=evaluator,
        )
        manager.run()
        # straggler=1.0 taints every attempt (it succeeds, but the
        # measurement is injected): nothing is admissible.
        ledger = manager.run_dir / "evalcache.jsonl"
        assert not ledger.exists() or ledger.read_text() == ""

    def test_ledger_is_plain_provenance(self, tmp_path):
        manager = OptimizationManager(
            OptimizerConf.from_dict(_conf_dict(tmp_path, num_samples=3)),
            evaluator=lambda config, **kw: {"latency": 4.2},
        )
        manager.run()
        line = (manager.run_dir / "evalcache.jsonl").read_text().splitlines()[0]
        record = json.loads(line)
        assert record["config"] == {"x": 0}
        assert record["result"]["latency"] == 4.2
        assert "objective" in record["result"]

"""Tests for Phase I: OptimizationProblem, objectives, constraints."""

import pytest

from repro.bayesopt import Integer, Real, Space
from repro.errors import ValidationError
from repro.optimizer import MetricConstraint, Objective, OptimizationProblem


def _space():
    return Space([Integer(0, 10, name="k"), Real(0, 1, name="f")])


class TestObjective:
    def test_signed(self):
        assert Objective("m", "min").signed(2.0) == 2.0
        assert Objective("m", "max").signed(2.0) == -2.0

    def test_validation(self):
        with pytest.raises(ValidationError):
            Objective("m", "up")
        with pytest.raises(ValidationError):
            Objective("m", weight=0)


class TestMetricConstraint:
    def test_le(self):
        c = MetricConstraint("resp", 4.0, "<=")
        assert c.satisfied(3.9)
        assert not c.satisfied(4.1)
        assert c.violation(5.0) == pytest.approx(1.0)

    def test_ge(self):
        c = MetricConstraint("throughput", 30.0, ">=")
        assert c.satisfied(31.0)
        assert c.violation(25.0) == pytest.approx(5.0)

    def test_str(self):
        assert str(MetricConstraint("resp", 4.0)) == "resp <= 4.0"

    def test_validation(self):
        with pytest.raises(ValidationError):
            MetricConstraint("m", 1.0, "==")


class TestSingleObjective:
    def test_scalarize_passthrough(self):
        problem = OptimizationProblem(_space(), Objective("resp", "min"))
        assert problem.scalarize({"resp": 2.5}) == 2.5
        assert problem.is_single_objective
        assert problem.primary_metric == "resp"

    def test_missing_metric(self):
        problem = OptimizationProblem(_space(), Objective("resp"))
        with pytest.raises(ValidationError, match="no metric"):
            problem.scalarize({"other": 1.0})

    def test_constraint_penalty_monotone_in_violation(self):
        problem = OptimizationProblem(
            _space(),
            Objective("resp"),
            constraints=[MetricConstraint("resp", 4.0)],
        )
        ok = problem.scalarize({"resp": 3.9})
        bad = problem.scalarize({"resp": 4.5})
        worse = problem.scalarize({"resp": 6.0})
        assert ok < bad < worse
        assert bad > 100  # penalty dominates

    def test_feasible(self):
        problem = OptimizationProblem(
            _space(), Objective("resp"), constraints=[MetricConstraint("cpu", 1.0)]
        )
        assert problem.feasible({"resp": 1, "cpu": 0.9})
        assert not problem.feasible({"resp": 1, "cpu": 1.1})


class TestMultiObjective:
    def _problem(self):
        return OptimizationProblem(
            _space(),
            [Objective("latency", "min", weight=1.0), Objective("throughput", "max", weight=0.1)],
        )

    def test_scalarize_weighted(self):
        problem = self._problem()
        value = problem.scalarize({"latency": 2.0, "throughput": 30.0})
        assert value == pytest.approx(2.0 - 3.0)

    def test_dominates(self):
        problem = self._problem()
        a = {"latency": 1.0, "throughput": 30.0}
        b = {"latency": 2.0, "throughput": 20.0}
        c = {"latency": 0.5, "throughput": 10.0}
        assert problem.dominates(a, b)
        assert not problem.dominates(b, a)
        assert not problem.dominates(a, c) and not problem.dominates(c, a)

    def test_pareto_front(self):
        problem = self._problem()
        evals = [
            {"latency": 1.0, "throughput": 30.0},  # non-dominated
            {"latency": 2.0, "throughput": 20.0},  # dominated by 0
            {"latency": 0.5, "throughput": 10.0},  # non-dominated
            {"latency": 1.0, "throughput": 29.0},  # dominated by 0
        ]
        assert problem.pareto_front(evals) == [0, 2]

    def test_pareto_front_excludes_infeasible(self):
        problem = OptimizationProblem(
            _space(),
            [Objective("latency", "min"), Objective("throughput", "max")],
            constraints=[MetricConstraint("cpu", 0.9)],
        )
        evals = [
            {"latency": 0.1, "throughput": 99.0, "cpu": 0.99},  # infeasible
            {"latency": 1.0, "throughput": 30.0, "cpu": 0.5},
        ]
        assert problem.pareto_front(evals) == [1]

    def test_duplicate_metrics_rejected(self):
        with pytest.raises(ValidationError):
            OptimizationProblem(_space(), [Objective("m"), Objective("m")])


class TestDescribe:
    def test_describe_contains_bounds(self):
        problem = OptimizationProblem(
            _space(), Objective("resp"), constraints=[MetricConstraint("resp", 4.0)]
        )
        desc = problem.describe()
        names = [v["name"] for v in desc["variables"]]
        assert names == ["k", "f"]
        assert desc["variables"][0]["low"] == 0
        assert desc["constraints"] == ["resp <= 4.0"]

    def test_best_index(self):
        problem = OptimizationProblem(_space(), Objective("resp"))
        assert problem.best_index([3.0, 1.0, 2.0]) == 1
        with pytest.raises(ValidationError):
            problem.best_index([])

"""Tests for the hybrid fluid/DES engine and its epoch aggregator."""

import json

import pytest

from repro.engine import (
    BASELINE_CONFIG,
    ArrivalSchedule,
    HybridEngine,
    HybridKnobs,
    HybridRunResult,
    WorkloadSpec,
    simulate_hybrid,
)
from repro.errors import ValidationError
from repro.monitoring import EpochSample, HybridAggregator

#: small diurnal day: cheap to run, still exercises regime changes and
#: several sampling windows.
SCHEDULE = ArrivalSchedule.diurnal(4.0, 12.0, period=3600.0, steps=24)
DURATION = 3600.0


@pytest.fixture(scope="module")
def result() -> HybridRunResult:
    return simulate_hybrid(BASELINE_CONFIG, SCHEDULE, duration=DURATION, seed=3)


class TestKnobs:
    def test_defaults_valid(self):
        HybridKnobs()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"epoch": 0.0},
            {"epoch": float("inf")},
            {"sample_every": 0},
            {"window": 0.0},
            {"window_warmup": -1.0},
            {"error_bound": 0.0},
            {"error_bound": 1.0},
            {"regime_threshold": 0.0},
            {"correction_alpha": 0.0},
            {"correction_alpha": 1.5},
            {"prime_cap": -1.0},
            {"drain_grace": -1.0},
            {"noise_allowance": -0.5},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ValidationError):
            HybridKnobs(**kwargs)


class TestHybridEngine:
    def test_requires_open_loop(self):
        with pytest.raises(ValidationError, match="open-loop"):
            HybridEngine(BASELINE_CONFIG, WorkloadSpec(simultaneous_requests=40))

    def test_rejects_trace_schedules(self):
        workload = WorkloadSpec(
            duration=100.0,
            warmup=0.0,
            arrival_schedule=ArrivalSchedule.from_trace([1.0, 2.0]),
        )
        with pytest.raises(ValidationError, match="trace"):
            HybridEngine(BASELINE_CONFIG, workload)

    def test_wraps_plain_arrival_rate(self):
        workload = WorkloadSpec(duration=1200.0, warmup=0.0, arrival_rate=6.0)
        engine = HybridEngine(BASELINE_CONFIG, workload, seed=5)
        assert engine.schedule.rate_at(0.0) == 6.0
        run = engine.run()
        assert run.throughput == pytest.approx(6.0, rel=0.1)

    def test_epoch_accounting(self, result):
        assert result.fluid_epochs + result.des_epochs == len(result.epochs)
        assert result.des_epochs >= 1  # at least the startup window
        assert result.fluid_epochs > result.des_epochs  # fluid dominates
        assert 0.0 < result.des_time_fraction < 1.0
        modes = {sample.mode for sample in result.epochs}
        assert modes == {"fluid", "des"}

    def test_error_accounting_within_bound(self, result):
        assert len(result.window_errors) == result.des_epochs
        assert result.max_window_error >= result.mean_window_error >= 0.0
        assert result.within_bound
        assert result.error_throughput_bias <= result.error_bound
        assert result.error_p95_bias <= result.error_bound
        assert result.error_throughput_noise > 0.0
        assert result.error_p95_noise > result.error_throughput_noise

    def test_low_rate_bias_noise_floor(self):
        """At ~1.5-4 req/s a window completes only ~30-80 requests, so the
        run-level bias estimate is itself noise-limited; the noise floor
        debit must keep such runs from being flagged as out of bound."""
        sched = ArrivalSchedule.diurnal(1.5, 4.5, period=7200.0, steps=24)
        run = simulate_hybrid(BASELINE_CONFIG, sched, duration=7200.0, seed=1)
        assert run.within_bound
        assert run.error_throughput_noise > 0.02  # genuinely noise-limited

    def test_tracks_offered_load(self, result):
        mean_rate = SCHEDULE.mean_rate(DURATION)
        assert result.throughput == pytest.approx(mean_rate, rel=0.05)
        assert result.user_response_time.mean > 0
        p = result.response_percentiles
        assert p["p50"] <= p["p95"] <= p["p99"]

    def test_deterministic_under_seed(self, result):
        replay = simulate_hybrid(BASELINE_CONFIG, SCHEDULE, duration=DURATION, seed=3)
        assert replay.throughput == result.throughput
        assert replay.completed_requests == result.completed_requests
        assert replay.user_response_time == result.user_response_time
        assert replay.response_percentiles == result.response_percentiles
        assert replay.window_errors == result.window_errors

    def test_seed_changes_windows(self, result):
        other = simulate_hybrid(BASELINE_CONFIG, SCHEDULE, duration=DURATION, seed=4)
        assert other.window_errors != result.window_errors

    def test_to_dict_json_serializable(self, result):
        payload = result.to_dict()
        assert payload["fluid_epochs"] == result.fluid_epochs
        assert payload["within_bound"] == result.within_bound
        json.dumps(payload)  # must not raise


class TestHybridAggregator:
    @staticmethod
    def _sample(index, mode, start, end, **kwargs):
        defaults = dict(
            rate=10.0,
            throughput=10.0,
            response_mean=1.0,
            response_p95=2.0,
            cpu_usage=0.5,
        )
        defaults.update(kwargs)
        return EpochSample(index=index, start=start, end=end, mode=mode, **defaults)

    def test_completion_weighted_mean(self):
        agg = HybridAggregator()
        agg.add_fluid(self._sample(0, "fluid", 0.0, 100.0, response_mean=1.0))
        agg.add_fluid(
            self._sample(1, "fluid", 100.0, 200.0, throughput=30.0, response_mean=2.0)
        )
        # 1000 completions at 1.0s, 3000 at 2.0s → weighted mean 1.75
        assert agg.response_summary().mean == pytest.approx(1.75)
        assert agg.completed == 4000

    def test_percentiles_monotone_and_bracketed(self):
        agg = HybridAggregator()
        agg.add_fluid(self._sample(0, "fluid", 0.0, 100.0, response_mean=1.0, response_p95=2.0))
        agg.add_des(
            self._sample(1, "des", 100.0, 200.0, response_mean=1.5, response_p95=3.0),
            responses=[0.5 + 0.1 * i for i in range(30)],
        )
        p = agg.percentiles()
        assert p["p50"] <= p["p95"] <= p["p99"]
        assert 0.0 < p["p50"] < 3.5

    def test_mode_counts_and_des_fraction(self):
        agg = HybridAggregator()
        agg.add_fluid(self._sample(0, "fluid", 0.0, 300.0))
        agg.add_des(self._sample(1, "des", 300.0, 400.0), responses=[1.0, 2.0])
        assert agg.mode_counts() == {"fluid": 1, "des": 1}
        assert agg.des_time_fraction() == pytest.approx(0.25)

    def test_series_one_point_per_epoch(self):
        agg = HybridAggregator()
        agg.add_fluid(self._sample(0, "fluid", 0.0, 300.0))
        agg.add_fluid(self._sample(1, "fluid", 300.0, 600.0))
        series = agg.series()
        assert len(series.throughput.times) == 2
        assert series.throughput.times[-1] == 600.0


class TestScenarioIntegration:
    def test_plantnet_hybrid_mode(self):
        from repro.plantnet import PlantNetScenario

        scenario = PlantNetScenario(
            duration=DURATION,
            warmup=0.0,
            repetitions=1,
            base_seed=11,
            arrival_schedule=SCHEDULE,
            engine_mode="hybrid",
        )
        result = scenario.run(BASELINE_CONFIG)
        run = result.runs[0]
        assert isinstance(run, HybridRunResult)
        assert run.throughput == pytest.approx(SCHEDULE.mean_rate(DURATION), rel=0.05)
        fp = scenario.fingerprint()
        assert fp["engine_mode"] == "hybrid"
        assert fp["arrival_schedule"] == SCHEDULE.to_dict()

    def test_hybrid_mode_needs_schedule(self):
        from repro.plantnet import PlantNetScenario

        with pytest.raises(ValidationError, match="arrival_schedule"):
            PlantNetScenario(engine_mode="hybrid")

"""Tests for acquisitions and the ask/tell Bayesian optimizer."""

import math

import numpy as np
import pytest

from repro.bayesopt import (
    Integer,
    Optimizer,
    Real,
    Space,
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)
from repro.errors import OptimizationError, ValidationError


class TestAcquisitions:
    def test_ei_zero_without_hope(self):
        mu = np.array([10.0])
        std = np.array([1e-9])
        assert expected_improvement(mu, std, y_best=1.0)[0] == pytest.approx(0.0, abs=1e-6)

    def test_ei_positive_when_below_best(self):
        assert expected_improvement(np.array([0.0]), np.array([0.5]), y_best=1.0)[0] > 0.5

    def test_ei_grows_with_std_at_same_mean(self):
        mu = np.array([1.0, 1.0])
        std = np.array([0.1, 2.0])
        ei = expected_improvement(mu, std, y_best=1.0)
        assert ei[1] > ei[0]

    def test_pi_is_probability(self):
        pi = probability_of_improvement(np.array([0.0, 5.0]), np.array([1.0, 1.0]), y_best=1.0)
        assert ((pi >= 0) & (pi <= 1)).all()
        assert pi[0] > pi[1]

    def test_lcb_prefers_low_mean_high_std(self):
        acq = lower_confidence_bound(np.array([1.0, 1.0]), np.array([0.1, 1.0]), kappa=2.0)
        assert acq[1] > acq[0]

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            expected_improvement(np.zeros(3), np.zeros(2), 0.0)


class TestOptimizer:
    def _space(self):
        return Space([Real(-2.0, 2.0, name="a"), Real(-2.0, 2.0, name="b")])

    @staticmethod
    def _quadratic(x):
        return (x[0] - 0.5) ** 2 + (x[1] + 1.0) ** 2

    @pytest.mark.parametrize("estimator", ["ET", "GP", "RF"])
    def test_beats_initial_design(self, estimator):
        opt = Optimizer(
            self._space(),
            base_estimator=estimator,
            n_initial_points=8,
            acq_func="EI",
            random_state=0,
            acq_n_candidates=500,
        )
        result = opt.run(self._quadratic, 32)
        assert result.fun < result.best_after(8) + 1e-12
        assert result.fun < 0.35

    def test_gp_hedge_runs(self):
        opt = Optimizer(
            self._space(), base_estimator="ET", n_initial_points=6,
            acq_func="gp_hedge", random_state=1, acq_n_candidates=300,
        )
        result = opt.run(self._quadratic, 20)
        assert result.fun < 0.5
        assert (opt._gains >= 0).all()

    def test_initial_points_use_generator(self):
        opt = Optimizer(
            self._space(), n_initial_points=5, initial_point_generator="sobol", random_state=0
        )
        points = [opt.ask() for _ in range(5)]
        assert len(points) == 5
        assert len({tuple(p) for p in points}) == 5

    def test_ask_tell_async_pending(self):
        """Multiple asks before any tell must return distinct points."""
        opt = Optimizer(self._space(), n_initial_points=3, random_state=0)
        pending = [opt.ask() for _ in range(6)]
        assert len({tuple(np.round(p, 9)) for p in pending}) == 6
        for p in pending:
            opt.tell(p, self._quadratic(p))
        assert len(opt.yi) == 6
        assert not opt._pending

    def test_tell_quarantines_nonfinite(self):
        """A NaN tell is recorded (never re-suggested) but poisons nothing:
        later asks still return finite candidates and the incumbent ignores
        the quarantined value."""
        opt = Optimizer(self._space(), n_initial_points=3, random_state=0)
        x = opt.ask()
        opt.tell(x, float("nan"))
        assert len(opt.yi) == 1
        assert opt._n_finite == 0
        for _ in range(8):
            x = opt.ask()
            opt.tell(x, self._quadratic(x))
        x = opt.ask()
        opt.tell(x, float("inf"))
        # model-based asks after non-finite tells stay finite
        x = opt.ask()
        assert np.isfinite(np.asarray(x, dtype=float)).all()
        result = opt.result()
        assert math.isfinite(result.fun)
        assert result.n_evaluations == 10

    def test_result_requires_a_finite_tell(self):
        opt = Optimizer(self._space(), n_initial_points=2, random_state=0)
        opt.tell(opt.ask(), float("nan"))
        with pytest.raises(OptimizationError):
            opt.result()

    def test_result_before_tell(self):
        opt = Optimizer(self._space())
        with pytest.raises(OptimizationError):
            opt.result()

    def test_tell_clears_pending_for_integer_dims(self):
        """Regression: integer decoding collapses unit coords, so tell()
        must match pending suggestions by decoded point — stale pending
        entries would otherwise pile up constant-liar fantasies."""
        space = Space([Integer(0, 20, name="a")])
        opt = Optimizer(space, base_estimator="ET", n_initial_points=4,
                        acq_func="EI", random_state=0, acq_n_candidates=300)
        for _ in range(12):
            x = opt.ask()
            opt.tell(x, float((x[0] - 13) ** 2))
        assert not opt._pending
        assert opt.result().fun <= 4.0

    def test_integer_space_dedup(self):
        """Tiny integer spaces: asks must not repeat forever."""
        space = Space([Integer(0, 2, name="k")])
        opt = Optimizer(space, n_initial_points=2, acq_func="EI", random_state=0,
                        acq_n_candidates=50)
        seen = []
        for _ in range(6):
            x = opt.ask()
            seen.append(x[0])
            opt.tell(x, float(x[0]))
        assert set(seen) <= {0, 1, 2}

    def test_result_tracks_history(self):
        opt = Optimizer(self._space(), n_initial_points=4, random_state=0)
        result = opt.run(self._quadratic, 10)
        assert result.n_evaluations == 10
        assert len(result.x_iters) == 10
        assert result.fun == min(result.func_vals)
        assert result.to_dict()["fun"] == result.fun

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            Optimizer(self._space(), n_initial_points=0)
        with pytest.raises(ValidationError):
            Optimizer(self._space(), acq_func="UCB-magic")
        with pytest.raises(ValidationError):
            Optimizer(self._space(), lie_strategy="cl_median")

    def test_tell_is_lazy_and_result_matches(self):
        """tell() no longer rebuilds the result; result() serves the cache."""
        opt = Optimizer(self._space(), n_initial_points=4, random_state=0)
        assert opt.tell(opt.ask(), 1.0) is None
        for _ in range(5):
            x = opt.ask()
            opt.tell(x, self._quadratic(x))
        result = opt.result()
        assert result.n_evaluations == 6
        assert result.fun == min(result.func_vals)
        assert result.x == result.x_iters[result.func_vals.index(result.fun)]

    def test_callable_base_estimator(self):
        from repro.surrogate import KNeighborsRegressor

        opt = Optimizer(
            self._space(),
            base_estimator=lambda: KNeighborsRegressor(3),
            n_initial_points=5,
            acq_func="EI",
            random_state=0,
            acq_n_candidates=200,
        )
        result = opt.run(self._quadratic, 15)
        assert result.fun < 1.0


class _CountingFactory:
    """Surrogate factory that counts how many models were fitted."""

    def __init__(self):
        from repro.surrogate import KNeighborsRegressor

        self.fits = 0
        self._cls = KNeighborsRegressor

    def __call__(self):
        self.fits += 1
        return self._cls(3)


class TestBatchedAsk:
    def _space(self):
        return Space([Real(-2.0, 2.0, name="a"), Real(-2.0, 2.0, name="b")])

    def test_batch_points_distinct_and_pending(self):
        opt = Optimizer(self._space(), n_initial_points=3, random_state=0,
                        acq_n_candidates=200)
        batch = opt.ask(8)
        assert len(batch) == 8
        assert len({tuple(np.round(p, 9)) for p in batch}) == 8
        assert len(opt._pending) == 8
        for p in batch:
            opt.tell(p, float(p[0] ** 2 + p[1] ** 2))
        assert not opt._pending

    def test_batch_fits_surrogate_once(self):
        factory = _CountingFactory()
        opt = Optimizer(self._space(), base_estimator=factory, n_initial_points=3,
                        acq_func="EI", random_state=0, acq_n_candidates=200)
        for _ in range(3):
            x = opt.ask()
            opt.tell(x, float(x[0] ** 2))
        before = factory.fits
        opt.ask(6)
        assert factory.fits == before + 1

    def test_refit_throttle_bounds_fits(self):
        factory = _CountingFactory()
        opt = Optimizer(self._space(), base_estimator=factory, n_initial_points=3,
                        acq_func="EI", random_state=0, acq_n_candidates=200,
                        refit_every=5)
        for _ in range(23):
            x = opt.ask()
            opt.tell(x, float(x[0] ** 2))
        # 20 model-phase asks with refits gated to every 5 fresh observations
        # (plus the staleness override) must fit far fewer than 20 models.
        assert factory.fits <= 8

    def test_model_history_capped_and_opt_in(self):
        opt = Optimizer(self._space(), n_initial_points=3, acq_func="EI",
                        random_state=0, acq_n_candidates=100)
        for _ in range(8):
            x = opt.ask()
            opt.tell(x, float(x[0] ** 2))
        assert opt.models == []  # default: flat memory, nothing retained
        kept = Optimizer(self._space(), n_initial_points=3, acq_func="EI",
                         random_state=0, acq_n_candidates=100, keep_models=2)
        for _ in range(8):
            x = kept.ask()
            kept.tell(x, float(x[0] ** 2))
        assert 1 <= len(kept.models) <= 2

    def test_invalid_batch_and_params(self):
        with pytest.raises(ValidationError):
            Optimizer(self._space()).ask(0)
        with pytest.raises(ValidationError):
            Optimizer(self._space(), refit_every=0)
        with pytest.raises(ValidationError):
            Optimizer(self._space(), keep_models=-1)


class TestPendingMatch:
    """Regression tests for _pop_pending (close points, representation drift)."""

    def test_nearest_unit_point_wins_over_first(self):
        space = Space([Real(0.0, 1.0, name="a")])
        opt = Optimizer(space, n_initial_points=1, random_state=0)
        far = np.array([0.5])
        near = np.array([0.5 + 4e-7])
        opt._pending = [
            (far, [0.5], "EI"),
            (near, [0.5 + 4e-7], "PI"),
        ]
        # Told point sits closest to `near`, but within atol of both; the
        # old first-allclose scan would pop `far` and misattribute the gain.
        opt.tell([0.5 + 4.2e-7], 1.0)
        assert len(opt._pending) == 1
        assert opt._pending[0][2] == "EI"

    def test_tuple_and_numpy_representation_drift(self):
        space = Space([Real(0.0, 1.0, name="a"), Integer(1, 9, name="b")])
        opt = Optimizer(space, n_initial_points=2, random_state=0)
        x = opt.ask()
        opt.tell((np.float64(x[0]), float(x[1])), 0.5)  # tuple + int→float drift
        assert not opt._pending
        assert opt.result().n_evaluations == 1

    def test_exact_decoded_match_beats_unit_distance(self):
        space = Space([Integer(0, 20, name="k")])
        opt = Optimizer(space, n_initial_points=1, random_state=0)
        # Two pending entries decoding to different integers whose unit
        # coords are far from the told slice-centre: exact match must win.
        opt._pending = [
            (np.array([0.21]), [4], "LCB"),
            (np.array([0.40]), [8], "EI"),
        ]
        opt.tell([8], 3.0)
        assert len(opt._pending) == 1
        assert opt._pending[0][2] == "LCB"


class TestAskFallbackDedup:
    """The initial-design wrap and random fallback must respect taken points."""

    def test_replayed_design_points_not_reasked(self):
        space = Space([Real(0.0, 1.0, name="a"), Real(0.0, 1.0, name="b")])
        probe = Optimizer(space, n_initial_points=4, random_state=7)
        design = [probe.ask() for _ in range(4)]
        opt = Optimizer(space, n_initial_points=4, random_state=7)
        # Resume replay: the first two design points were already evaluated.
        opt.tell(design[0], 1.0)
        opt.tell(design[1], 2.0)
        nxt = opt.ask()
        for replayed in design[:2]:
            assert np.max(np.abs(np.asarray(nxt) - np.asarray(replayed))) > 1e-6

    def test_random_fallback_distinct_after_design_exhausted(self):
        space = Space([Real(0.0, 1.0, name="a"), Real(0.0, 1.0, name="b")])
        opt = Optimizer(space, n_initial_points=2, random_state=0)
        points = [opt.ask() for _ in range(8)]  # 2 design + 6 random fallback
        assert len({tuple(np.round(p, 6)) for p in points}) == 8


class TestHedgeAccounting:
    def _told_initial(self, opt, n=4):
        for _ in range(n):
            x = opt.ask()
            opt.tell(x, 1.0)

    def test_tell_unasked_point_leaves_gains_untouched(self):
        """Resume replay tells points that were never asked this session."""
        space = Space([Real(0.0, 1.0, name="a")])
        opt = Optimizer(space, n_initial_points=2, random_state=0)
        opt.tell([0.25], 0.9)
        opt.tell([0.75], 0.1)
        assert np.all(opt._gains == 0.0)
        assert opt.result().fun == 0.1

    def test_improving_hedge_tell_updates_one_gain(self):
        space = Space([Real(0.0, 1.0, name="a"), Real(0.0, 1.0, name="b")])
        opt = Optimizer(space, n_initial_points=2, acq_func="gp_hedge",
                        random_state=3, acq_n_candidates=100)
        self._told_initial(opt, 2)
        x = opt.ask()
        opt.tell(x, 0.0)  # strict improvement over the 1.0 incumbents
        assert float(opt._gains.sum()) == pytest.approx(1.0)
        assert (opt._gains > 0).sum() == 1

    def test_batched_hedge_asks_account_gains(self):
        space = Space([Real(0.0, 1.0, name="a"), Real(0.0, 1.0, name="b")])
        opt = Optimizer(space, n_initial_points=2, acq_func="gp_hedge",
                        random_state=5, acq_n_candidates=100)
        self._told_initial(opt, 2)
        batch = opt.ask(4)
        assert len(opt._pending) == 4
        for i, x in enumerate(batch):
            opt.tell(x, 0.5 - 0.1 * i)
        assert not opt._pending
        assert float(opt._gains.sum()) > 0.0
        assert np.all(opt._gains >= 0.0)

"""Tests for acquisitions and the ask/tell Bayesian optimizer."""

import numpy as np
import pytest

from repro.bayesopt import (
    Integer,
    Optimizer,
    Real,
    Space,
    expected_improvement,
    lower_confidence_bound,
    probability_of_improvement,
)
from repro.errors import OptimizationError, ValidationError


class TestAcquisitions:
    def test_ei_zero_without_hope(self):
        mu = np.array([10.0])
        std = np.array([1e-9])
        assert expected_improvement(mu, std, y_best=1.0)[0] == pytest.approx(0.0, abs=1e-6)

    def test_ei_positive_when_below_best(self):
        assert expected_improvement(np.array([0.0]), np.array([0.5]), y_best=1.0)[0] > 0.5

    def test_ei_grows_with_std_at_same_mean(self):
        mu = np.array([1.0, 1.0])
        std = np.array([0.1, 2.0])
        ei = expected_improvement(mu, std, y_best=1.0)
        assert ei[1] > ei[0]

    def test_pi_is_probability(self):
        pi = probability_of_improvement(np.array([0.0, 5.0]), np.array([1.0, 1.0]), y_best=1.0)
        assert ((pi >= 0) & (pi <= 1)).all()
        assert pi[0] > pi[1]

    def test_lcb_prefers_low_mean_high_std(self):
        acq = lower_confidence_bound(np.array([1.0, 1.0]), np.array([0.1, 1.0]), kappa=2.0)
        assert acq[1] > acq[0]

    def test_shape_mismatch(self):
        with pytest.raises(ValidationError):
            expected_improvement(np.zeros(3), np.zeros(2), 0.0)


class TestOptimizer:
    def _space(self):
        return Space([Real(-2.0, 2.0, name="a"), Real(-2.0, 2.0, name="b")])

    @staticmethod
    def _quadratic(x):
        return (x[0] - 0.5) ** 2 + (x[1] + 1.0) ** 2

    @pytest.mark.parametrize("estimator", ["ET", "GP", "RF"])
    def test_beats_initial_design(self, estimator):
        opt = Optimizer(
            self._space(),
            base_estimator=estimator,
            n_initial_points=8,
            acq_func="EI",
            random_state=0,
            acq_n_candidates=500,
        )
        result = opt.run(self._quadratic, 32)
        assert result.fun < result.best_after(8) + 1e-12
        assert result.fun < 0.35

    def test_gp_hedge_runs(self):
        opt = Optimizer(
            self._space(), base_estimator="ET", n_initial_points=6,
            acq_func="gp_hedge", random_state=1, acq_n_candidates=300,
        )
        result = opt.run(self._quadratic, 20)
        assert result.fun < 0.5
        assert (opt._gains >= 0).all()

    def test_initial_points_use_generator(self):
        opt = Optimizer(
            self._space(), n_initial_points=5, initial_point_generator="sobol", random_state=0
        )
        points = [opt.ask() for _ in range(5)]
        assert len(points) == 5
        assert len({tuple(p) for p in points}) == 5

    def test_ask_tell_async_pending(self):
        """Multiple asks before any tell must return distinct points."""
        opt = Optimizer(self._space(), n_initial_points=3, random_state=0)
        pending = [opt.ask() for _ in range(6)]
        assert len({tuple(np.round(p, 9)) for p in pending}) == 6
        for p in pending:
            opt.tell(p, self._quadratic(p))
        assert len(opt.yi) == 6
        assert not opt._pending

    def test_tell_rejects_nonfinite(self):
        opt = Optimizer(self._space(), random_state=0)
        x = opt.ask()
        with pytest.raises(ValidationError):
            opt.tell(x, float("nan"))

    def test_result_before_tell(self):
        opt = Optimizer(self._space())
        with pytest.raises(OptimizationError):
            opt.result()

    def test_tell_clears_pending_for_integer_dims(self):
        """Regression: integer decoding collapses unit coords, so tell()
        must match pending suggestions by decoded point — stale pending
        entries would otherwise pile up constant-liar fantasies."""
        space = Space([Integer(0, 20, name="a")])
        opt = Optimizer(space, base_estimator="ET", n_initial_points=4,
                        acq_func="EI", random_state=0, acq_n_candidates=300)
        for _ in range(12):
            x = opt.ask()
            opt.tell(x, float((x[0] - 13) ** 2))
        assert not opt._pending
        assert opt.result().fun <= 4.0

    def test_integer_space_dedup(self):
        """Tiny integer spaces: asks must not repeat forever."""
        space = Space([Integer(0, 2, name="k")])
        opt = Optimizer(space, n_initial_points=2, acq_func="EI", random_state=0,
                        acq_n_candidates=50)
        seen = []
        for _ in range(6):
            x = opt.ask()
            seen.append(x[0])
            opt.tell(x, float(x[0]))
        assert set(seen) <= {0, 1, 2}

    def test_result_tracks_history(self):
        opt = Optimizer(self._space(), n_initial_points=4, random_state=0)
        result = opt.run(self._quadratic, 10)
        assert result.n_evaluations == 10
        assert len(result.x_iters) == 10
        assert result.fun == min(result.func_vals)
        assert result.to_dict()["fun"] == result.fun

    def test_invalid_config(self):
        with pytest.raises(ValidationError):
            Optimizer(self._space(), n_initial_points=0)
        with pytest.raises(ValidationError):
            Optimizer(self._space(), acq_func="UCB-magic")
        with pytest.raises(ValidationError):
            Optimizer(self._space(), lie_strategy="cl_median")

    def test_callable_base_estimator(self):
        from repro.surrogate import KNeighborsRegressor

        opt = Optimizer(
            self._space(),
            base_estimator=lambda: KNeighborsRegressor(3),
            n_initial_points=5,
            acq_func="EI",
            random_state=0,
            acq_n_candidates=200,
        )
        result = opt.run(self._quadratic, 15)
        assert result.fun < 1.0

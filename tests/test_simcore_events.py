"""Tests for the DES kernel: events, processes, composition."""

import pytest

from repro import simcore
from repro.errors import SimulationError


class TestTimeouts:
    def test_clock_advances(self):
        env = simcore.Environment()

        def proc(env):
            yield env.timeout(5.0)
            return env.now

        p = env.process(proc(env))
        env.run()
        assert p.value == 5.0
        assert env.now == 5.0

    def test_negative_delay_rejected(self):
        env = simcore.Environment()
        with pytest.raises(ValueError):
            env.timeout(-1.0)

    def test_timeout_value(self):
        env = simcore.Environment()

        def proc(env):
            got = yield env.timeout(1.0, value="payload")
            return got

        p = env.process(proc(env))
        env.run()
        assert p.value == "payload"

    def test_same_time_fifo_order(self):
        env = simcore.Environment()
        order = []

        def proc(env, tag):
            yield env.timeout(1.0)
            order.append(tag)

        for tag in ("a", "b", "c"):
            env.process(proc(env, tag))
        env.run()
        assert order == ["a", "b", "c"]


class TestEvents:
    def test_manual_succeed(self):
        env = simcore.Environment()
        ev = env.event()

        def waiter(env, ev):
            got = yield ev
            return got

        def trigger(env, ev):
            yield env.timeout(2.0)
            ev.succeed(99)

        p = env.process(waiter(env, ev))
        env.process(trigger(env, ev))
        env.run()
        assert p.value == 99

    def test_double_trigger_rejected(self):
        env = simcore.Environment()
        ev = env.event()
        ev.succeed(1)
        with pytest.raises(SimulationError):
            ev.succeed(2)

    def test_failed_event_raises_in_process(self):
        env = simcore.Environment()
        ev = env.event()

        def waiter(env, ev):
            try:
                yield ev
            except RuntimeError as exc:
                return str(exc)

        p = env.process(waiter(env, ev))
        ev.fail(RuntimeError("boom"))
        env.run()
        assert p.value == "boom"

    def test_unhandled_failure_crashes_sim(self):
        env = simcore.Environment()
        ev = env.event()
        ev.fail(RuntimeError("unhandled"))
        with pytest.raises(RuntimeError, match="unhandled"):
            env.run()

    def test_defused_failure_ignored(self):
        env = simcore.Environment()
        ev = env.event()
        ev.fail(RuntimeError("x"))
        ev.defuse()
        env.run()  # no raise

    def test_fail_requires_exception(self):
        env = simcore.Environment()
        with pytest.raises(TypeError):
            env.event().fail("not an exception")

    def test_value_of_untriggered_event(self):
        env = simcore.Environment()
        with pytest.raises(SimulationError):
            _ = env.event().value


class TestProcesses:
    def test_yield_non_event_raises(self):
        env = simcore.Environment()

        def bad(env):
            yield "not an event"

        env.process(bad(env))
        with pytest.raises(SimulationError, match="non-event"):
            env.run()

    def test_yield_raw_number_is_plain_delay(self):
        env = simcore.Environment()
        seen = []

        def proc(env):
            got = yield 1.5
            seen.append((env.now, got))
            got = yield 2  # ints work too
            seen.append((env.now, got))

        env.process(proc(env))
        env.run()
        assert seen == [(1.5, None), (3.5, None)]

    def test_yield_negative_number_raises(self):
        env = simcore.Environment()

        def bad(env):
            yield -1.0

        env.process(bad(env))
        with pytest.raises(ValueError, match="finite"):
            env.run()

    def test_process_exception_propagates(self):
        env = simcore.Environment()

        def bad(env):
            yield env.timeout(1.0)
            raise ValueError("inside")

        env.process(bad(env))
        with pytest.raises(ValueError, match="inside"):
            env.run()

    def test_process_is_event(self):
        env = simcore.Environment()

        def inner(env):
            yield env.timeout(3.0)
            return "done"

        def outer(env):
            result = yield env.process(inner(env))
            return (result, env.now)

        p = env.process(outer(env))
        env.run()
        assert p.value == ("done", 3.0)

    def test_needs_generator(self):
        env = simcore.Environment()
        with pytest.raises(TypeError):
            env.process(lambda: None)  # type: ignore[arg-type]


class TestInterrupts:
    def test_interrupt_cause(self):
        env = simcore.Environment()

        def sleeper(env):
            try:
                yield env.timeout(100.0)
            except simcore.Interrupt as interrupt:
                return (interrupt.cause, env.now)

        def killer(env, victim):
            yield env.timeout(4.0)
            victim.interrupt("reason")

        p = env.process(sleeper(env))
        env.process(killer(env, p))
        env.run()
        assert p.value == ("reason", 4.0)

    def test_interrupt_terminated_rejected(self):
        env = simcore.Environment()

        def quick(env):
            yield env.timeout(1.0)

        p = env.process(quick(env))
        env.run()
        with pytest.raises(SimulationError):
            p.interrupt()

    def test_process_survives_interrupt_and_continues(self):
        env = simcore.Environment()

        def resilient(env):
            try:
                yield env.timeout(100.0)
            except simcore.Interrupt:
                pass
            yield env.timeout(5.0)
            return env.now

        def killer(env, victim):
            yield env.timeout(2.0)
            victim.interrupt()

        p = env.process(resilient(env))
        env.process(killer(env, p))
        env.run()
        assert p.value == 7.0


class TestConditions:
    def test_all_of(self):
        env = simcore.Environment()
        e1, e2 = env.timeout(1, "a"), env.timeout(2, "b")
        got = env.run(until=simcore.all_of(env, [e1, e2]))
        assert got == {e1: "a", e2: "b"}
        assert env.now == 2.0

    def test_any_of(self):
        env = simcore.Environment()
        e1, e2 = env.timeout(1, "a"), env.timeout(2, "b")
        got = env.run(until=simcore.any_of(env, [e1, e2]))
        assert got == {e1: "a"}
        assert env.now == 1.0

    def test_empty_all_of_fires_immediately(self):
        env = simcore.Environment()
        cond = simcore.all_of(env, [])
        assert cond.triggered

    def test_failure_propagates_through_condition(self):
        env = simcore.Environment()
        good = env.timeout(1)
        bad = env.event()
        cond = simcore.all_of(env, [good, bad])
        bad.fail(RuntimeError("nope"))
        with pytest.raises(RuntimeError, match="nope"):
            env.run(until=cond)

"""Tests for repro.utils.timeseries."""

import numpy as np
import pytest

from repro.utils.timeseries import TimeSeries


class TestAppend:
    def test_ordering_enforced(self):
        ts = TimeSeries("x")
        ts.append(1.0, 10.0)
        with pytest.raises(ValueError):
            ts.append(0.5, 11.0)

    def test_equal_times_allowed(self):
        ts = TimeSeries("x")
        ts.append(1.0, 1.0)
        ts.append(1.0, 2.0)
        assert len(ts) == 2

    def test_iteration(self):
        ts = TimeSeries("x", [(0.0, 1.0), (1.0, 2.0)])
        assert list(ts) == [(0.0, 1.0), (1.0, 2.0)]


class TestAggregation:
    def test_summary(self):
        ts = TimeSeries("x", [(float(i), float(i)) for i in range(5)])
        s = ts.summary()
        assert s.mean == 2.0
        assert s.count == 5

    def test_window(self):
        ts = TimeSeries("x", [(float(i), float(i)) for i in range(10)])
        w = ts.window(2.0, 5.0)
        assert list(w.times) == [2.0, 3.0, 4.0]

    def test_resample_means_buckets(self):
        ts = TimeSeries("x", [(0.5, 1.0), (1.5, 3.0), (2.5, 5.0), (3.5, 7.0)])
        r = ts.resample(2.0)
        assert len(r) == 2
        assert list(r.values) == [2.0, 6.0]

    def test_resample_rejects_bad_interval(self):
        with pytest.raises(ValueError):
            TimeSeries("x").resample(0.0)

    def test_integrate_constant(self):
        ts = TimeSeries("x", [(0.0, 2.0), (10.0, 2.0)])
        assert ts.integrate() == pytest.approx(20.0)
        assert ts.time_average() == pytest.approx(2.0)

    def test_time_average_single_sample(self):
        ts = TimeSeries("x", [(0.0, 3.0)])
        assert ts.time_average() == 3.0


class TestMerge:
    def test_merge_pools_samples(self):
        a = TimeSeries("x", [(0.0, 1.0), (10.0, 2.0)])
        b = TimeSeries("x", [(0.0, 3.0), (10.0, 4.0)])
        merged = TimeSeries.merge([a, b])
        assert len(merged) == 4
        assert merged.summary().mean == pytest.approx(2.5)
        # times strictly ordered after offsetting
        assert np.all(np.diff(merged.times) >= 0)

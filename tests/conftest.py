"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.engine.config import ThreadPoolConfig, WorkloadSpec


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def baseline_config() -> ThreadPoolConfig:
    return ThreadPoolConfig(http=40, download=40, extract=7, simsearch=40)


@pytest.fixture
def short_workload() -> WorkloadSpec:
    """A workload short enough for unit tests but past warm-up."""
    return WorkloadSpec(
        simultaneous_requests=40, duration=120.0, sample_interval=10.0, warmup=30.0
    )

"""Tests for the mergeable latency digests and the perf recorder."""

import json
import math
import random

import pytest

from repro.observability.digest import (
    PERF_PROFILE_FILE,
    LatencyDigest,
    NullPerfRecorder,
    PerfRecorder,
    get_perf,
    set_perf,
)
from repro.observability.profile import aggregate_costs


@pytest.fixture(autouse=True)
def _clean_perf():
    yield
    set_perf(None)


class TestLatencyDigest:
    def test_quantiles_on_uniform(self):
        rng = random.Random(7)
        digest = LatencyDigest()
        for _ in range(20_000):
            digest.add(rng.uniform(0.0, 1.0))
        assert digest.count == 20_000
        assert abs(digest.quantile(0.5) - 0.5) < 0.02
        assert abs(digest.quantile(0.9) - 0.9) < 0.02
        assert abs(digest.quantile(0.99) - 0.99) < 0.01

    def test_compression_bounds_memory(self):
        digest = LatencyDigest(compression=50)
        for i in range(10_000):
            digest.add(float(i))
        small = len(digest.to_dict()["means"])
        for i in range(10_000, 50_000):
            digest.add(float(i))
        big = len(digest.to_dict()["means"])
        # centroid count is O(compression), independent of observations
        assert big <= 10 * 50
        assert big <= small * 1.5 + 10
        assert digest.count == 50_000

    def test_min_max_exact(self):
        digest = LatencyDigest()
        for v in (0.5, 0.1, 0.9, 0.3):
            digest.add(v)
        assert digest.quantile(0.0) == 0.1
        assert digest.quantile(1.0) == 0.9

    def test_non_finite_skipped(self):
        digest = LatencyDigest()
        digest.add(float("nan"))
        digest.add(float("inf"))
        digest.add(1.0)
        assert digest.count == 1

    def test_empty_quantile_is_nan(self):
        assert math.isnan(LatencyDigest().quantile(0.5))

    def test_merge_matches_pooled(self):
        rng = random.Random(11)
        pooled = LatencyDigest()
        left, right = LatencyDigest(), LatencyDigest()
        for i in range(6000):
            v = rng.expovariate(10.0)
            pooled.add(v)
            (left if i % 2 else right).add(v)
        left.merge(right)
        assert left.count == pooled.count
        for q in (0.5, 0.9, 0.99):
            assert left.quantile(q) == pytest.approx(pooled.quantile(q), rel=0.1)

    def test_serialization_roundtrip(self):
        rng = random.Random(3)
        digest = LatencyDigest()
        for _ in range(2000):
            digest.add(rng.uniform(0, 2))
        clone = LatencyDigest.from_dict(json.loads(json.dumps(digest.to_dict())))
        assert clone.count == digest.count
        assert clone.quantile(0.9) == pytest.approx(digest.quantile(0.9))

    def test_samples_reconstruction(self):
        digest = LatencyDigest()
        for i in range(1000):
            digest.add(i / 1000.0)
        samples = digest.samples(cap=500)
        assert samples
        assert min(samples) >= 0.0 and max(samples) <= 1.0

    def test_percentiles_rollup_keys(self):
        digest = LatencyDigest()
        digest.add(1.0)
        stats = digest.percentiles()
        assert set(stats) >= {"count", "mean", "p50", "p90", "p99"}


class TestPerfRecorder:
    def test_record_and_quantiles(self):
        perf = PerfRecorder()
        for i in range(100):
            perf.record("suggest", 0.001 * (i + 1))
        assert "suggest" in perf.ops()
        assert perf.digest("suggest").quantile(0.5) == pytest.approx(0.0505, rel=0.1)

    def test_timed_context(self):
        perf = PerfRecorder()
        with perf.timed("deploy"):
            pass
        assert perf.digest("deploy").count == 1

    def test_drain_resets(self):
        perf = PerfRecorder()
        perf.record("tell", 0.01)
        state = perf.drain_state()
        assert state["ops"]["tell"]["count"] == 1
        assert "tell" not in perf.ops()

    def test_merge_state_rebases_windows(self):
        worker = PerfRecorder(window_s=1.0)
        worker.record("evaluate", 0.5)
        state = worker.drain_state()
        parent = PerfRecorder(window_s=1.0)
        merged = parent.merge_state(state)
        assert merged >= 1
        assert parent.digest("evaluate").count == 1

    def test_merge_garbage_is_safe(self):
        parent = PerfRecorder()
        assert parent.merge_state({"ops": {"x": {"digest": "nope"}}}) == 0
        assert parent.merge_state({}) == 0

    def test_export_and_prometheus(self, tmp_path):
        perf = PerfRecorder()
        perf.record("suggest", 0.002)
        path = perf.export_json(tmp_path / PERF_PROFILE_FILE)
        data = json.loads(path.read_text())
        assert data["schema"].startswith("repro.perf_profile/")
        entry = data["ops"]["suggest"]
        for key in ("count", "mean", "p50", "p90", "p99", "digest"):
            assert key in entry
        prom = perf.render_prometheus()
        assert 'repro_latency_seconds{op="suggest",quantile="0.5"}' in prom
        assert "summary" in prom

    def test_null_recorder_is_inert(self):
        null = NullPerfRecorder()
        null.record("suggest", 1.0)
        with null.timed("suggest"):
            pass
        assert not null.enabled
        assert null.ops() == {}

    def test_global_slot(self):
        assert not get_perf().enabled
        live = PerfRecorder()
        set_perf(live)
        assert get_perf() is live
        set_perf(None)
        assert not get_perf().enabled


class TestAggregateCostsHardening:
    def test_nan_and_garbage_values_skipped(self):
        """Regression: one NaN cost must not poison the campaign profile."""
        costs = [
            {"suggest_s": 0.1, "evaluate_s": 1.0, "tell_s": 0.01},
            {"suggest_s": float("nan"), "evaluate_s": float("inf"), "tell_s": "bogus"},
            {"suggest_s": 0.3, "evaluate_s": 2.0, "tell_s": 0.03, "retries": float("nan")},
        ]
        out = aggregate_costs(costs)
        assert out.trials == 3
        assert out.suggest_s == pytest.approx(0.4)
        assert out.evaluate_s == pytest.approx(3.0)
        assert out.tell_s == pytest.approx(0.04)
        assert out.retries == 0
        assert math.isfinite(out.total_s)

    def test_percentiles_present(self):
        costs = [
            {"suggest_s": 0.1, "evaluate_s": 1.0, "tell_s": 0.01, "queue_wait_s": 0.2}
            for _ in range(5)
        ]
        out = aggregate_costs(costs)
        assert out.queue_wait_s == pytest.approx(1.0)
        for key in ("suggest_s", "evaluate_s", "tell_s", "queue_wait_s"):
            assert out.percentiles[key]["p50"] == pytest.approx(costs[0][key])
        assert "percentiles" in out.to_dict()

    def test_absent_component_stays_out_of_percentiles(self):
        out = aggregate_costs([{"suggest_s": 0.1}])
        assert "tell_s" not in out.percentiles

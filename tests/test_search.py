"""Tests for the trial runner, search algorithms and schedulers."""

import pytest

from repro.bayesopt import Integer, Space
from repro.errors import TrialError, ValidationError
from repro.search import (
    AsyncHyperBandScheduler,
    ConcurrencyLimiter,
    ExperimentAnalysis,
    FIFOScheduler,
    GridSearch,
    RandomSearch,
    SurrogateSearch,
    Trial,
    TrialRunner,
    TrialStatus,
    run,
)
from repro.search.schedulers import TrialDecision


def _space():
    return Space([Integer(0, 30, name="a"), Integer(0, 10, name="b")])


def _objective(config):
    return (config["a"] - 21) ** 2 + (config["b"] - 4) ** 2


def _failing_objective(config):
    """Module-level (picklable) trainable that always blows up."""
    raise RuntimeError(f"boom at a={config['a']}")


class TestSearchAlgorithms:
    def test_random_search_in_bounds(self):
        alg = RandomSearch(_space(), seed=0)
        for i in range(20):
            config = alg.suggest(f"t{i}")
            assert 0 <= config["a"] <= 30
            assert 0 <= config["b"] <= 10

    def test_grid_search_exhausts(self):
        alg = GridSearch(_space(), {"a": [0, 10], "b": [1, 2, 3]})
        configs = [alg.suggest(f"t{i}") for i in range(7)]
        assert configs[-1] is None
        assert len([c for c in configs if c]) == 6

    def test_grid_missing_dimension(self):
        with pytest.raises(ValidationError):
            GridSearch(_space(), {"a": [1]})

    def test_surrogate_search_mode_max(self):
        alg = SurrogateSearch(_space(), mode="max", n_initial_points=4, random_state=0)
        for i in range(10):
            config = alg.suggest(f"t{i}")
            alg.on_trial_complete(f"t{i}", config, -_objective(config))
        # internally minimizes the negated value; no crash = pass, plus
        # the optimizer should hold 10 observations
        assert len(alg.optimizer.yi) == 10

    def test_concurrency_limiter_blocks(self):
        alg = ConcurrencyLimiter(RandomSearch(_space(), seed=0), max_concurrent=2)
        c1 = alg.suggest("t1")
        c2 = alg.suggest("t2")
        assert c1 is not None and c2 is not None
        assert alg.suggest("t3") is None  # at the cap
        alg.on_trial_complete("t1", c1, 1.0)
        assert alg.suggest("t3") is not None

    def test_concurrency_limiter_error_path(self):
        alg = ConcurrencyLimiter(RandomSearch(_space(), seed=0), max_concurrent=1)
        c1 = alg.suggest("t1")
        assert alg.suggest("t2") is None
        alg.on_trial_error("t1", c1)
        assert alg.suggest("t2") is not None


class TestRunner:
    def test_sync_runs_num_samples(self):
        analysis = run(
            _objective, space=_space(), metric="loss", num_samples=12, seed=0, name="s"
        )
        assert len(analysis.trials) == 12
        assert all(t.status is TrialStatus.TERMINATED for t in analysis.trials)
        assert analysis.best_result == min(t.result["loss"] for t in analysis.trials)

    def test_thread_executor(self):
        analysis = run(
            _objective,
            space=_space(),
            metric="loss",
            num_samples=10,
            executor="thread",
            max_workers=4,
            seed=1,
        )
        assert len(analysis.trials) == 10
        assert analysis.wall_clock_s > 0

    def test_dict_result_trainable(self):
        def trainable(config):
            return {"loss": _objective(config), "aux": 1.0}

        analysis = run(trainable, space=_space(), metric="loss", num_samples=4, seed=0)
        assert analysis.best_trial.result["aux"] == 1.0

    def test_missing_metric_is_error(self):
        def trainable(config):
            return {"wrong": 1.0}

        analysis = run(trainable, space=_space(), metric="loss", num_samples=3, seed=0)
        assert all(t.status is TrialStatus.ERROR for t in analysis.trials)
        with pytest.raises(TrialError):
            _ = analysis.best_trial

    def test_errors_recorded_not_raised(self):
        def flaky(config):
            if config["a"] % 2 == 0:
                raise RuntimeError("even is bad")
            return float(config["a"])

        analysis = run(flaky, search_alg=RandomSearch(_space(), seed=3), metric="loss", num_samples=20)
        statuses = {t.status for t in analysis.trials}
        assert TrialStatus.ERROR in statuses
        assert TrialStatus.TERMINATED in statuses
        errored = next(t for t in analysis.trials if t.status is TrialStatus.ERROR)
        assert "even is bad" in errored.error

    def test_raise_on_failed_trial(self):
        def bad(config):
            raise RuntimeError("nope")

        runner = TrialRunner(
            bad,
            RandomSearch(_space(), seed=0),
            metric="loss",
            num_samples=2,
            raise_on_failed_trial=True,
        )
        with pytest.raises(TrialError):
            runner.run()

    def test_grid_exhaustion_stops_early(self):
        alg = GridSearch(_space(), {"a": [0, 30], "b": [0, 10]})
        analysis = run(_objective, search_alg=alg, metric="loss", num_samples=50)
        assert len(analysis.trials) == 4

    def test_process_executor_rejects_scheduler(self):
        with pytest.raises(ValidationError):
            TrialRunner(
                _objective,
                RandomSearch(_space(), seed=0),
                metric="loss",
                executor="process",
                scheduler=AsyncHyperBandScheduler(),
            )

    def test_space_or_search_alg_required(self):
        with pytest.raises(ValidationError):
            run(_objective, metric="loss", num_samples=2)

    def test_process_executor_error_path(self):
        """_collect must record the failure on the trial, not raise."""
        analysis = run(
            _failing_objective,
            search_alg=RandomSearch(_space(), seed=0),
            metric="loss",
            num_samples=3,
            executor="process",
            max_workers=2,
        )
        assert len(analysis.trials) == 3
        for trial in analysis.trials:
            assert trial.status is TrialStatus.ERROR
            assert trial.error is not None and "boom" in trial.error
            assert trial.runtime_s >= 0.0
            assert trial.result == {}
        with pytest.raises(TrialError):
            _ = analysis.best_trial

    def test_process_executor_success_sets_runtime(self):
        analysis = run(
            _objective,
            search_alg=RandomSearch(_space(), seed=1),
            metric="loss",
            num_samples=4,
            executor="process",
            max_workers=2,
        )
        assert all(t.status is TrialStatus.TERMINATED for t in analysis.trials)
        assert all(t.runtime_s >= 0.0 for t in analysis.trials)

    def test_log_dir_jsonl_thread_executor(self, tmp_path):
        """One valid JSON line per trial, even with concurrent writers."""
        import json

        analysis = run(
            _objective,
            space=_space(),
            metric="loss",
            num_samples=8,
            executor="thread",
            max_workers=4,
            seed=2,
            name="logged",
            log_dir=str(tmp_path),
        )
        log_path = tmp_path / "logged.jsonl"
        assert log_path.exists()
        lines = [line for line in log_path.read_text().splitlines() if line.strip()]
        assert len(lines) == len(analysis.trials) == 8
        records = [json.loads(line) for line in lines]  # every line parses alone
        assert {r["trial_id"] for r in records} == {t.trial_id for t in analysis.trials}
        for record in records:
            assert record["status"] == "terminated"
            assert "loss" in record["result"]
            assert "cost" in record and "evaluate_s" in record["cost"]


class TestSchedulers:
    def test_fifo_never_stops(self):
        sched = FIFOScheduler("min")
        trial = Trial("t", {})
        assert sched.on_result(trial, 1, 100.0) is TrialDecision.CONTINUE

    def test_asha_stops_bad_trials(self):
        sched = AsyncHyperBandScheduler(mode="min", grace_period=1, reduction_factor=2, max_t=8)
        good = Trial("good", {})
        # seed the rung with good values
        for i in range(4):
            assert sched.on_result(Trial(f"g{i}", {}), 1, 1.0) is TrialDecision.CONTINUE or True
        decision = sched.on_result(Trial("bad", {}), 1, 100.0)
        assert decision is TrialDecision.STOP
        assert sched.on_result(good, 1, 0.5) is TrialDecision.CONTINUE

    def test_asha_respects_grace_period(self):
        sched = AsyncHyperBandScheduler(mode="min", grace_period=5, reduction_factor=2, max_t=20)
        assert sched.rung_for(3) is None
        assert sched.rung_for(5) == 5
        assert sched.rung_for(11) == 10

    def test_asha_mode_max(self):
        sched = AsyncHyperBandScheduler(mode="max", grace_period=1, reduction_factor=2, max_t=4)
        for i in range(4):
            sched.on_result(Trial(f"g{i}", {}), 1, 10.0)
        assert sched.on_result(Trial("bad", {}), 1, 0.1) is TrialDecision.STOP

    def test_asha_validation(self):
        with pytest.raises(ValidationError):
            AsyncHyperBandScheduler(grace_period=0)
        with pytest.raises(ValidationError):
            AsyncHyperBandScheduler(reduction_factor=1.0)
        with pytest.raises(ValidationError):
            AsyncHyperBandScheduler(grace_period=10, max_t=5)

    def test_asha_early_stops_in_runner(self):
        def trainable(config, reporter):
            base = _objective(config)
            for step in range(1, 9):
                reporter.report(base + 10.0 / step, step=step)
            return base

        sched = AsyncHyperBandScheduler(mode="min", grace_period=2, reduction_factor=3, max_t=8)
        analysis = run(
            trainable,
            search_alg=RandomSearch(_space(), seed=5),
            scheduler=sched,
            metric="loss",
            num_samples=25,
            executor="thread",
            max_workers=4,
        )
        stopped = [t for t in analysis.trials if t.status is TrialStatus.STOPPED]
        assert stopped, "ASHA should stop at least one trial"
        for t in stopped:
            assert t.intermediate  # stopped trials carry their last report


class TestExperimentAnalysis:
    def test_records_and_history(self):
        analysis = run(_objective, space=_space(), metric="loss", num_samples=5, seed=0)
        records = analysis.records()
        assert len(records) == 5
        assert all("config" in r and "result" in r for r in records)
        assert len(analysis.objective_history()) == 5

    def test_str(self):
        analysis = run(_objective, space=_space(), metric="loss", num_samples=3, seed=0)
        assert "best loss" in str(analysis)

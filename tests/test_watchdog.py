"""Tests for the live campaign watchdog: detection, rate limits, resume."""

import json

import pytest

from repro.errors import ValidationError
from repro.observability import set_registry, set_tracer
from repro.observability.metrics import MetricsRegistry
from repro.observability.trace import RecordingTracer, Span
from repro.observability.watchdog import (
    ALERTS_FILE,
    Alert,
    CampaignWatchdog,
    WatchdogConfig,
    get_watchdog,
    load_alerts,
    set_watchdog,
)
from repro.optimizer import OptimizationManager, OptimizerConf


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    set_tracer(None)
    set_registry(None)
    set_watchdog(None)


def _execute_span(span_id, trial_id, duration, *, status="ok", error=None, end=None):
    end = end if end is not None else float(span_id)
    return Span(
        name="execute",
        span_id=span_id,
        start_s=end - duration,
        end_s=end,
        attributes={"trial_id": trial_id},
        status=status,
        error=error,
    )


def _trial_span(span_id, trial_id, objective, *, end=None):
    end = end if end is not None else float(span_id)
    return Span(
        name=f"trial:{trial_id}",
        span_id=span_id,
        start_s=end - 1.0,
        end_s=end,
        attributes={"trial_id": trial_id, "objective": objective},
    )


class TestWatchdogConfig:
    def test_defaults_valid(self):
        config = WatchdogConfig()
        assert config.straggler_zscore == 3.5
        assert config.to_dict()["mode"] == "min"

    def test_unknown_keys_rejected(self):
        with pytest.raises(ValidationError, match="unknown watchdog keys"):
            WatchdogConfig.from_dict({"stragler_zscore": 3.0})

    @pytest.mark.parametrize(
        "overrides",
        [
            {"straggler_zscore": 0.0},
            {"straggler_min_trials": 1},
            {"stall_patience": 0},
            {"regression_zscore": -1.0},
            {"saturation_threshold": 1.5},
            {"fault_storm_window_s": 0.0},
            {"fault_storm_count": 0},
            {"max_alerts_per_kind": 0},
            {"mode": "sideways"},
        ],
    )
    def test_threshold_validation(self, overrides):
        with pytest.raises(ValidationError):
            WatchdogConfig.from_dict(overrides)

    def test_round_trip(self):
        config = WatchdogConfig(straggler_zscore=2.5, stall_patience=3)
        clone = WatchdogConfig.from_dict(config.to_dict())
        assert clone == config

    def test_conf_block_builds_watchdog(self, tmp_path):
        conf = OptimizerConf.from_dict(_conf_dict(tmp_path, watchdog={"enabled": True}))
        watchdog = conf.build_watchdog()
        assert isinstance(watchdog, CampaignWatchdog)
        assert OptimizerConf.from_dict(_conf_dict(tmp_path)).build_watchdog() is None

    def test_conf_block_validates_thresholds_early(self, tmp_path):
        with pytest.raises(ValidationError):
            OptimizerConf.from_dict(_conf_dict(tmp_path, watchdog={"stall_patience": 0}))


class TestStragglerDetection:
    def test_outlier_duration_fires_once(self):
        watchdog = CampaignWatchdog(WatchdogConfig(straggler_min_trials=4))
        for i in range(5):
            watchdog.on_span(_execute_span(i + 1, f"t{i}", 1.0))
        watchdog.on_span(_execute_span(10, "slow", 30.0))
        watchdog.on_span(_execute_span(11, "slow", 30.0))  # same subject: deduped
        alerts = watchdog.alerts()
        assert [a.kind for a in alerts] == ["straggler"]
        assert alerts[0].details["trial_id"] == "slow"
        assert alerts[0].details["zscore"] >= 3.5

    def test_not_armed_before_min_trials(self):
        watchdog = CampaignWatchdog(WatchdogConfig(straggler_min_trials=4))
        watchdog.on_span(_execute_span(1, "t0", 1.0))
        watchdog.on_span(_execute_span(2, "slow", 50.0))
        assert watchdog.alerts() == []

    def test_flat_baseline_does_not_divide_by_zero(self):
        watchdog = CampaignWatchdog(WatchdogConfig(straggler_min_trials=2))
        for i in range(4):
            watchdog.on_span(_execute_span(i + 1, f"t{i}", 2.0))  # zero MAD
        watchdog.on_span(_execute_span(9, "slow", 3.0))
        assert [a.kind for a in watchdog.alerts()] == ["straggler"]


class TestObjectiveRules:
    def test_stall_fires_after_patience(self):
        watchdog = CampaignWatchdog(WatchdogConfig(stall_patience=3))
        watchdog.on_span(_trial_span(1, "t1", 5.0))
        for i in range(3):
            watchdog.on_span(_trial_span(i + 2, f"t{i + 2}", 6.0))
        alerts = [a for a in watchdog.alerts() if a.kind == "stall"]
        assert len(alerts) == 1
        assert alerts[0].details["since_improve"] == 3

    def test_stall_rearms_after_improvement(self):
        watchdog = CampaignWatchdog(WatchdogConfig(stall_patience=2))
        watchdog.on_span(_trial_span(1, "t1", 5.0))
        watchdog.on_span(_trial_span(2, "t2", 6.0))
        watchdog.on_span(_trial_span(3, "t3", 6.0))  # stall #1
        watchdog.on_span(_trial_span(4, "t4", 1.0))  # improvement resets
        watchdog.on_span(_trial_span(5, "t5", 2.0))
        watchdog.on_span(_trial_span(6, "t6", 2.0))  # stall #2
        stalls = [a for a in watchdog.alerts() if a.kind == "stall"]
        assert len(stalls) == 2

    def test_regression_direction_aware(self):
        watchdog = CampaignWatchdog(
            WatchdogConfig(straggler_min_trials=4, regression_zscore=4.0, stall_patience=99)
        )
        for i in range(6):
            watchdog.on_span(_trial_span(i + 1, f"t{i}", 10.0 + 0.1 * i))
        watchdog.on_span(_trial_span(10, "better", 0.5))  # improvement: no alert
        watchdog.on_span(_trial_span(11, "worse", 500.0))
        kinds = [a.kind for a in watchdog.alerts()]
        assert kinds.count("regression") == 1
        regression = next(a for a in watchdog.alerts() if a.kind == "regression")
        assert regression.details["trial_id"] == "worse"

    def test_max_mode_inverts_direction(self):
        watchdog = CampaignWatchdog(
            WatchdogConfig(mode="max", straggler_min_trials=4, stall_patience=99)
        )
        for i in range(6):
            watchdog.on_span(_trial_span(i + 1, f"t{i}", 100.0 - i))
        watchdog.on_span(_trial_span(10, "collapse", 1.0))  # much lower = worse
        assert "regression" in [a.kind for a in watchdog.alerts()]


class TestPoolAndFaultRules:
    def test_saturated_pool(self):
        watchdog = CampaignWatchdog(WatchdogConfig(saturation_threshold=0.9))
        span = Span(
            name="pool:extract", span_id=1, start_s=0.0, end_s=1.0,
            attributes={"occupancy": 0.97},
        )
        watchdog.on_span(span)
        watchdog.on_span(span)  # deduped per pool
        alerts = watchdog.alerts()
        assert [a.kind for a in alerts] == ["saturation"]
        assert alerts[0].details["pool"] == "extract"

    def test_fault_storm_from_error_spans(self):
        watchdog = CampaignWatchdog(
            WatchdogConfig(fault_storm_window_s=10.0, fault_storm_count=3)
        )
        for i in range(3):
            watchdog.on_span(
                _execute_span(i + 1, f"t{i}", 0.5, status="error", error="boom", end=1.0 + i)
            )
        storms = [a for a in watchdog.alerts() if a.kind == "fault_storm"]
        assert len(storms) == 1
        assert storms[0].severity == "critical"

    def test_slow_failures_do_not_storm(self):
        watchdog = CampaignWatchdog(
            WatchdogConfig(fault_storm_window_s=1.0, fault_storm_count=3)
        )
        for i in range(4):
            watchdog.on_span(
                _execute_span(i + 1, f"t{i}", 0.5, status="error", error="x", end=10.0 * i)
            )
        assert [a for a in watchdog.alerts() if a.kind == "fault_storm"] == []

    def test_poll_reads_injected_fault_counter(self):
        registry = MetricsRegistry()
        counter = registry.counter(
            "repro_faults_injected_total",
            "faults injected into trial evaluations",
            labelnames=("kind",),
        )
        watchdog = CampaignWatchdog(WatchdogConfig(fault_storm_count=2))
        counter.inc(3, kind="transient")
        watchdog.poll(registry, time_s=5.0)
        storms = [a for a in watchdog.alerts() if a.kind == "fault_storm"]
        assert len(storms) == 1
        assert storms[0].details["injected"] == {"transient": 3.0}
        # no fresh faults since: polling again stays quiet.
        watchdog.poll(registry, time_s=6.0)
        assert len(watchdog.alerts()) == 1


class TestRateLimiting:
    def test_per_kind_cap_and_suppressed_counter(self):
        watchdog = CampaignWatchdog(
            WatchdogConfig(straggler_min_trials=2, max_alerts_per_kind=2)
        )
        for i in range(8):
            watchdog.on_span(_execute_span(i + 1, f"t{i}", 1.0))
        # each outlier is checked against the baseline *before* it joins it,
        # so the first four all score as stragglers: 2 fire, 2 suppressed.
        for i in range(4):
            watchdog.on_span(_execute_span(10 + i, f"slow{i}", 60.0 + i))
        alerts = watchdog.alerts()
        assert len([a for a in alerts if a.kind == "straggler"]) == 2
        assert watchdog.suppressed == 2
        summary = watchdog.summary()
        assert summary["total"] == 2
        assert summary["suppressed"] == 2
        assert summary["by_kind"] == {"straggler": 2}


class TestSpanStream:
    def test_attach_receives_finished_spans(self):
        tracer = RecordingTracer()
        watchdog = CampaignWatchdog(WatchdogConfig(straggler_min_trials=2, stall_patience=1))
        watchdog.attach(tracer)
        try:
            with tracer.span("trial:t1", trial_id="t1", objective=1.0):
                pass
            with tracer.span("trial:t2", trial_id="t2", objective=2.0):
                pass
        finally:
            watchdog.detach()
        # both trial spans streamed through: one stall alert after patience=1.
        assert [a.kind for a in watchdog.alerts()] == ["stall"]

    def test_detach_stops_the_stream(self):
        tracer = RecordingTracer()
        watchdog = CampaignWatchdog(WatchdogConfig(stall_patience=1))
        watchdog.attach(tracer)
        watchdog.detach()
        with tracer.span("trial:t1", trial_id="t1", objective=1.0):
            pass
        assert watchdog.alerts() == []

    def test_broken_subscriber_never_breaks_the_campaign(self):
        tracer = RecordingTracer()

        def broken(span):
            raise RuntimeError("bad consumer")

        tracer.subscribe(broken)
        with tracer.span("trial:t1"):
            pass  # must not raise
        assert len(tracer.finished()) == 1


class TestPersistence:
    def test_alerts_jsonl_round_trip(self, tmp_path):
        watchdog = CampaignWatchdog(WatchdogConfig(straggler_min_trials=2))
        for i in range(3):
            watchdog.on_span(_execute_span(i + 1, f"t{i}", 1.0))
        watchdog.on_span(_execute_span(9, "slow", 40.0))
        path = watchdog.export_jsonl(tmp_path / ALERTS_FILE)
        loaded = load_alerts(path)
        assert [a.kind for a in loaded] == ["straggler"]
        assert isinstance(loaded[0], Alert)
        assert loaded[0].details["trial_id"] == "slow"

    def test_state_dict_round_trip_excludes_baselines(self):
        watchdog = CampaignWatchdog(WatchdogConfig(straggler_min_trials=2))
        for i in range(3):
            watchdog.on_span(_execute_span(i + 1, f"t{i}", 1.0))
        watchdog.on_span(_execute_span(9, "slow", 40.0))
        state = json.loads(json.dumps(watchdog.state_dict()))  # JSON-safe
        assert "durations" not in state and "objectives" not in state

        restored = CampaignWatchdog(WatchdogConfig(straggler_min_trials=2))
        restored.load_state(state)
        assert [a.kind for a in restored.alerts()] == ["straggler"]
        # the fired key survives: the same straggler does not re-fire.
        restored.seed_from_trials(
            [{"cost": {"evaluate_s": 1.0}, "result": {"objective": 1.0}}] * 3
        )
        restored.on_span(_execute_span(20, "slow", 40.0))
        assert len(restored.alerts()) == 1

    def test_seed_from_trials_restores_baselines(self):
        watchdog = CampaignWatchdog(WatchdogConfig(straggler_min_trials=4, stall_patience=99))
        absorbed = watchdog.seed_from_trials(
            [
                {"cost": {"evaluate_s": 1.0 + 0.01 * i}, "result": {"objective": 5.0 - i}}
                for i in range(6)
            ]
        )
        assert absorbed == 6
        # baselines are armed immediately: a fresh outlier fires at once.
        watchdog.on_span(_execute_span(30, "slow", 25.0))
        assert [a.kind for a in watchdog.alerts()] == ["straggler"]


def _conf_dict(workdir, num_samples=6, **extra):
    data = {
        "name": "wd_campaign",
        "variables": [{"name": "x", "type": "integer", "low": 0, "high": 10}],
        "objectives": [{"metric": "latency", "mode": "min"}],
        "algorithm": {"search": "random"},
        "num_samples": num_samples,
        "seed": 3,
        "workdir": str(workdir),
    }
    data.update(extra)
    return data


class TestCampaignIntegration:
    def test_watchdog_block_implies_observability_artifacts(self, tmp_path):
        conf = OptimizerConf.from_dict(
            _conf_dict(tmp_path, watchdog={"enabled": True})
        )
        assert conf.observability is False
        manager = OptimizationManager(
            conf, evaluator=lambda config, **kw: {"latency": float(config["x"])}
        )
        outcome = manager.run()
        for name in ("spans.jsonl", ALERTS_FILE, "timeline.html", "trace_events.json"):
            assert (manager.run_dir / name).exists(), name
        assert "total" in outcome.summary.alerts
        assert get_watchdog() is None  # cleared after the run

    def test_summary_renders_watchdog_line(self, tmp_path):
        conf = OptimizerConf.from_dict(
            _conf_dict(
                tmp_path,
                watchdog={"straggler_min_trials": 2, "stall_patience": 1},
            )
        )
        manager = OptimizationManager(
            conf, evaluator=lambda config, **kw: {"latency": 5.0}
        )
        outcome = manager.run()
        assert "watchdog:" in outcome.summary.render()

    def test_checkpoint_carries_watchdog_state(self, tmp_path):
        conf = OptimizerConf.from_dict(
            _conf_dict(tmp_path, watchdog={"straggler_min_trials": 2, "stall_patience": 1})
        )
        manager = OptimizationManager(
            conf, evaluator=lambda config, **kw: {"latency": 5.0}
        )
        manager.run()
        checkpoint = json.loads((manager.run_dir / "checkpoint.json").read_text())
        assert "watchdog" in checkpoint
        state = checkpoint["watchdog"]
        assert {"fired", "counts", "suppressed", "stall_active", "alerts"} <= set(state)

    def test_resume_does_not_refire_old_alerts(self, tmp_path):
        """ISSUE satellite: watchdog state across checkpoint/resume."""
        # straggler detection effectively off: sub-millisecond evaluations
        # are all noise, and this test is about stall-alert persistence.
        watchdog_block = {"stall_patience": 2, "straggler_min_trials": 99}

        def evaluator(config, seed=None, duration=None):
            return {"latency": 5.0}  # constant: stalls immediately

        first = OptimizationManager(
            OptimizerConf.from_dict(
                _conf_dict(tmp_path, num_samples=6, watchdog=watchdog_block)
            ),
            evaluator=evaluator,
        )
        first_outcome = first.run()
        first_stalls = [
            a for a in first_outcome.summary.alerts["alerts"] if a["kind"] == "stall"
        ]
        assert first_stalls, "constant objective must stall in phase 1"

        second = OptimizationManager(
            OptimizerConf.from_dict(
                _conf_dict(tmp_path, num_samples=10, watchdog=watchdog_block)
            ),
            evaluator=evaluator,
            resume_from=first.run_dir,
        )
        second_outcome = second.run()
        alerts = second_outcome.summary.alerts["alerts"]
        # old alerts restored, and the still-stalled campaign did not re-fire
        # the same episode: the fired-key set survived the checkpoint.
        second_stalls = [a for a in alerts if a["kind"] == "stall"]
        assert second_stalls == first_stalls

    def test_resume_seeds_baselines_from_replayed_trials(self, tmp_path):
        calls = {"n": 0}

        def evaluator(config, seed=None, duration=None):
            calls["n"] += 1
            if calls["n"] == 9:  # one straggler in the resumed half
                import time

                time.sleep(0.4)
            return {"latency": float(config["x"])}

        block = {"straggler_zscore": 3.0, "straggler_min_trials": 3, "stall_patience": 99}
        first = OptimizationManager(
            OptimizerConf.from_dict(_conf_dict(tmp_path, num_samples=6, watchdog=block)),
            evaluator=evaluator,
        )
        first.run()

        second = OptimizationManager(
            OptimizerConf.from_dict(_conf_dict(tmp_path, num_samples=10, watchdog=block)),
            evaluator=evaluator,
            resume_from=first.run_dir,
        )
        outcome = second.run()
        stragglers = [
            a for a in outcome.summary.alerts["alerts"] if a["kind"] == "straggler"
        ]
        # baselines came from the replayed records (only 3 fresh trials ran
        # before the straggler — not enough on their own with min_trials=3
        # unless the replayed durations seeded the baseline).
        assert stragglers, outcome.summary.alerts
        assert calls["n"] == 10


class TestTailRule:
    def test_disabled_by_default(self):
        watchdog = CampaignWatchdog(WatchdogConfig(straggler_min_trials=2))
        for i in range(6):
            watchdog.on_span(_execute_span(i + 1, f"t{i}", 1.0))
        watchdog.on_span(_execute_span(10, "slow", 40.0))
        assert all(a.kind != "tail" for a in watchdog.alerts())

    def test_fires_on_tail_outlier(self):
        config = WatchdogConfig(straggler_min_trials=4, tail_factor=3.0)
        watchdog = CampaignWatchdog(config)
        for i in range(8):
            watchdog.on_span(_execute_span(i + 1, f"t{i}", 1.0 + 0.01 * i))
        watchdog.on_span(_execute_span(20, "slow", 30.0))
        tails = [a for a in watchdog.alerts() if a.kind == "tail"]
        assert len(tails) == 1
        details = tails[0].details
        assert details["trial_id"] == "slow"
        assert details["duration_s"] == pytest.approx(30.0)
        assert details["threshold_s"] < 30.0
        assert details["quantile"] == pytest.approx(0.99)

    def test_not_armed_before_min_trials(self):
        config = WatchdogConfig(straggler_min_trials=5, tail_factor=2.0)
        watchdog = CampaignWatchdog(config)
        watchdog.on_span(_execute_span(1, "t0", 1.0))
        watchdog.on_span(_execute_span(2, "slow", 50.0))
        assert all(a.kind != "tail" for a in watchdog.alerts())

    def test_same_trial_deduped(self):
        config = WatchdogConfig(straggler_min_trials=3, tail_factor=2.0)
        watchdog = CampaignWatchdog(config)
        for i in range(5):
            watchdog.on_span(_execute_span(i + 1, f"t{i}", 1.0))
        watchdog.on_span(_execute_span(10, "slow", 20.0))
        watchdog.on_span(_execute_span(11, "slow", 20.0))
        assert len([a for a in watchdog.alerts() if a.kind == "tail"]) == 1

    def test_seed_from_trials_feeds_digest(self):
        config = WatchdogConfig(straggler_min_trials=4, tail_factor=3.0)
        watchdog = CampaignWatchdog(config)
        seeded = watchdog.seed_from_trials(
            [{"trial_id": f"r{i}", "cost": {"evaluate_s": 1.0}} for i in range(6)]
        )
        assert seeded == 6
        # the very next outlier fires without any fresh trials
        watchdog.on_span(_execute_span(1, "slow", 25.0))
        assert any(a.kind == "tail" for a in watchdog.alerts())

    @pytest.mark.parametrize(
        "overrides",
        [{"tail_quantile": 0.0}, {"tail_quantile": 1.0}, {"tail_factor": -1.0}],
    )
    def test_config_validation(self, overrides):
        with pytest.raises(ValidationError):
            WatchdogConfig(**overrides)

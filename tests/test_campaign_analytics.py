"""Tests for campaign analytics: breakdowns, critical path, trace export, dashboard."""

import json

import pytest

from repro.cli import main
from repro.observability import set_registry, set_tracer
from repro.observability.analysis import (
    SEGMENTS,
    TRACE_EVENTS_FILE,
    TrialBreakdown,
    analyze_spans,
    compute_critical_path,
    pack_lanes,
    to_trace_events,
    trial_breakdowns,
    write_trace_events,
)
from repro.observability.dashboard import TIMELINE_FILE, render_dashboard, write_dashboard
from repro.observability.trace import Span
from repro.optimizer import OptimizationManager, OptimizerConf


@pytest.fixture(autouse=True)
def _clean_globals():
    yield
    set_tracer(None)
    set_registry(None)


def _trial_span(span_id, trial_id, start, end, children=(), objective=None):
    """One trial span plus its segment children as a flat span list."""
    trial = Span(
        name=f"trial:{trial_id}",
        span_id=span_id,
        start_s=start,
        end_s=end,
        attributes={"trial_id": trial_id},
    )
    if objective is not None:
        trial.attributes["objective"] = objective
    spans = [trial]
    for offset, (name, s0, s1) in enumerate(children):
        spans.append(
            Span(
                name=name,
                span_id=span_id * 100 + offset,
                parent_id=span_id,
                start_s=s0,
                end_s=s1,
                attributes={"trial_id": trial_id},
            )
        )
    return spans


class TestTrialBreakdowns:
    def test_segments_attributed_from_children(self):
        spans = _trial_span(
            1,
            "t1",
            0.0,
            10.0,
            children=[
                ("suggest", 0.0, 1.0),
                ("queue-wait", 1.0, 2.0),
                ("cycle:deploy", 2.0, 3.0),
                ("execute", 3.0, 9.0),
                ("tell", 9.0, 10.0),
            ],
        )
        (b,) = trial_breakdowns(spans)
        assert b.trial_id == "t1"
        assert b.segments == {
            "suggest": 1.0,
            "queue_wait": 1.0,
            "deploy": 1.0,
            "evaluate": 6.0,
            "tell": 1.0,
        }
        assert set(b.segments) <= set(SEGMENTS)
        assert b.duration_s == 10.0
        assert b.unattributed_s == 0.0

    def test_unattributed_gap_is_reported(self):
        spans = _trial_span(1, "t1", 0.0, 5.0, children=[("execute", 0.0, 3.0)])
        (b,) = trial_breakdowns(spans)
        assert b.unattributed_s == pytest.approx(2.0)

    def test_open_spans_ignored(self):
        open_trial = Span(name="trial:open", span_id=9, start_s=0.0, end_s=None)
        assert trial_breakdowns([open_trial]) == []


class TestCriticalPath:
    def test_sequential_trials_have_no_idle(self):
        breakdowns = [
            TrialBreakdown(
                "t1", 0.0, 2.0, intervals=[("evaluate", 0.0, 2.0)], segments={"evaluate": 2.0}
            ),
            TrialBreakdown(
                "t2", 2.0, 5.0, intervals=[("evaluate", 2.0, 5.0)], segments={"evaluate": 3.0}
            ),
        ]
        path = compute_critical_path(breakdowns)
        assert path.horizon_s == pytest.approx(5.0)
        assert path.segments["evaluate"] == pytest.approx(5.0)
        assert path.idle_s == pytest.approx(0.0)

    def test_gap_between_trials_counts_as_idle(self):
        breakdowns = [
            TrialBreakdown("t1", 0.0, 2.0, intervals=[("evaluate", 0.0, 2.0)]),
            TrialBreakdown("t2", 3.0, 5.0, intervals=[("evaluate", 3.0, 5.0)]),
        ]
        path = compute_critical_path(breakdowns)
        assert path.idle_s == pytest.approx(1.0)
        assert path.idle_fraction == pytest.approx(0.2)
        kinds = [step["kind"] for step in path.steps]
        assert kinds == ["evaluate", "idle", "evaluate"]

    def test_straggler_dominates_the_critical_path(self):
        # Three parallel trials; the straggler runs 10x longer, so the path
        # must attribute at least its extra delay to the evaluate segment.
        breakdowns = [
            TrialBreakdown("fast1", 0.0, 1.0, intervals=[("evaluate", 0.0, 1.0)]),
            TrialBreakdown("fast2", 0.0, 1.2, intervals=[("evaluate", 0.0, 1.2)]),
            TrialBreakdown("slow", 0.0, 10.0, intervals=[("evaluate", 0.0, 10.0)]),
        ]
        path = compute_critical_path(breakdowns)
        assert path.segments["evaluate"] >= 8.8  # the injected delay
        slow_steps = [s for s in path.steps if s.get("trial_id") == "slow"]
        assert slow_steps and slow_steps[0]["kind"] == "evaluate"

    def test_empty(self):
        path = compute_critical_path([])
        assert path.horizon_s == 0.0
        assert path.idle_fraction == 0.0


class TestLanePacking:
    def test_sequential_trials_share_one_lane(self):
        breakdowns = [
            TrialBreakdown("t1", 0.0, 1.0),
            TrialBreakdown("t2", 1.0, 2.0),
            TrialBreakdown("t3", 2.5, 3.0),
        ]
        lanes, count = pack_lanes(breakdowns)
        assert count == 1
        assert set(lanes.values()) == {0}

    def test_overlap_opens_new_lanes(self):
        breakdowns = [
            TrialBreakdown("t1", 0.0, 3.0),
            TrialBreakdown("t2", 1.0, 4.0),
            TrialBreakdown("t3", 2.0, 5.0),
            TrialBreakdown("t4", 4.5, 6.0),  # reuses a freed lane
        ]
        lanes, count = pack_lanes(breakdowns)
        assert count == 3
        assert lanes["t4"] in (0, 1)


def _campaign_conf(tmp_path, **extra):
    data = {
        "name": "analytics",
        "variables": [{"name": "x", "type": "integer", "low": 0, "high": 10}],
        "objectives": [{"metric": "latency", "mode": "min"}],
        "algorithm": {"search": "random"},
        "num_samples": 5,
        "executor": "thread",
        "max_workers": 2,
        "seed": 7,
        "workdir": str(tmp_path),
        "observability": True,
    }
    data.update(extra)
    return OptimizerConf.from_dict(data)


def _run_campaign(tmp_path, **extra):
    manager = OptimizationManager(
        _campaign_conf(tmp_path, **extra),
        evaluator=lambda config, seed=None, duration=None: {"latency": float(config["x"])},
    )
    manager.run()
    return manager.run_dir


class TestTraceEventExport:
    def test_round_trips_with_one_slice_per_trial_span(self, tmp_path):
        run_dir = _run_campaign(tmp_path)
        document = json.loads((run_dir / TRACE_EVENTS_FILE).read_text())
        events = document["traceEvents"]
        slices = [e for e in events if e["ph"] == "X"]
        trial_slices = [e for e in slices if e["name"].startswith("trial:")]
        assert len(trial_slices) == 5
        for event in slices:
            assert event["dur"] >= 0
            assert {"ph", "name", "cat", "ts", "dur", "pid", "tid", "args"} <= set(event)
        # metadata names the campaign process and at least one slot thread.
        metas = [e for e in events if e["ph"] == "M"]
        named = {(m["pid"], m["args"].get("name")) for m in metas}
        assert (1, "campaign") in named
        assert any(name and name.startswith("slot-") for _, name in named)

    def test_export_from_synthetic_spans(self, tmp_path):
        spans = _trial_span(1, "t1", 0.0, 2.0, children=[("execute", 0.0, 2.0)])
        path = write_trace_events(spans, tmp_path / "trace_events.json")
        document = json.loads(path.read_text())
        trial = [e for e in document["traceEvents"] if e["name"] == "trial:t1"]
        assert len(trial) == 1
        # child slices land on the same slot thread as their trial.
        execute = next(e for e in document["traceEvents"] if e["name"] == "execute")
        assert execute["pid"] == trial[0]["pid"] == 1
        assert execute["tid"] == trial[0]["tid"]

    def test_engine_and_reservation_spans_get_own_processes(self):
        spans = [
            Span(name="pool:extract", span_id=1, start_s=0.0, end_s=1.0),
            Span(name="reservation:job.1", span_id=2, start_s=0.0, end_s=2.0),
        ]
        document = to_trace_events(spans)
        by_name = {e["name"]: e for e in document["traceEvents"] if e["ph"] == "X"}
        assert by_name["pool:extract"]["pid"] == 2
        assert by_name["reservation:job.1"]["pid"] == 3


class TestDashboard:
    def test_html_is_self_contained(self, tmp_path):
        run_dir = _run_campaign(tmp_path)
        html = (run_dir / TIMELINE_FILE).read_text()
        assert html.lstrip().startswith("<!DOCTYPE html>")
        assert "campaign-data" in html
        # no external assets: everything inline.
        assert "http://" not in html and "https://" not in html
        assert "<script src" not in html and '<link rel="stylesheet" href' not in html
        payload = html.split('id="campaign-data" type="application/json">')[1]
        payload = payload.split("</script>")[0].replace("<\\/", "</")
        data = json.loads(payload)
        assert len(data["analysis"]["trials"]) == 5

    def test_render_escapes_embedded_html(self):
        analysis = analyze_spans(
            _trial_span(1, "</script><script>x", 0.0, 1.0, children=[("execute", 0.0, 1.0)])
        )
        html = render_dashboard(analysis)
        # the raw close-tag must never appear inside the data block.
        data_block = html.split('id="campaign-data"')[1].split("</script>")[0]
        assert "</script><script>" not in data_block

    def test_write_dashboard_with_alerts(self, tmp_path):
        analysis = analyze_spans(
            _trial_span(1, "t1", 0.0, 1.0, children=[("execute", 0.0, 1.0)])
        )
        alerts = [
            {
                "kind": "straggler",
                "severity": "warning",
                "message": "trial t1 took too long",
                "time_s": 1.0,
                "details": {},
            }
        ]
        path = write_dashboard(analysis, tmp_path / "timeline.html", alerts=alerts)
        html = path.read_text()
        assert "straggler" in html
        assert "trial t1 took too long" in html


class TestDashboardCli:
    def test_dashboard_command(self, tmp_path, capsys):
        run_dir = _run_campaign(tmp_path)
        code = main(["dashboard", str(run_dir)])
        assert code == 0
        out = capsys.readouterr().out
        assert "timeline.html" in out and "trace_events.json" in out
        assert (run_dir / TIMELINE_FILE).exists()

    def test_dashboard_out_dir(self, tmp_path, capsys):
        run_dir = _run_campaign(tmp_path)
        out_dir = tmp_path / "elsewhere"
        code = main(["dashboard", str(run_dir), "--out", str(out_dir)])
        assert code == 0
        assert (out_dir / TIMELINE_FILE).exists()
        assert (out_dir / TRACE_EVENTS_FILE).exists()

    def test_dashboard_requires_spans(self, tmp_path):
        empty = tmp_path / "empty"
        empty.mkdir()
        with pytest.raises(SystemExit):
            main(["dashboard", str(empty)])


class TestStragglerAcceptance:
    def test_injected_straggler_is_caught_and_attributed(self, tmp_path):
        """ISSUE acceptance: injected straggler -> alert + critical path."""
        delay = 0.25
        conf = _campaign_conf(
            tmp_path,
            num_samples=8,
            seed=1,
            # seed 1 @ rate 0.2 injects exactly one straggler over 8 trials.
            faults={"straggler": 0.2, "straggler_delay_s": delay, "seed": 1},
            watchdog={"straggler_zscore": 3.0, "straggler_min_trials": 3},
        )
        def evaluator(config, seed=None, duration=None):
            import time

            time.sleep(0.02)  # stable baseline: the injected delay is the only outlier
            return {"latency": 1.0}

        manager = OptimizationManager(conf, evaluator=evaluator)
        outcome = manager.run()
        injected = manager.fault_injector.injected["straggler"]
        assert injected >= 1, "seeded rate should inject at least one straggler"

        from repro.observability.analysis import analyze_run

        analysis = analyze_run(manager.run_dir)
        slow = max(analysis.trials, key=lambda b: b.segments.get("evaluate", 0.0))
        assert slow.segments["evaluate"] >= delay

        straggler_alerts = [
            a for a in outcome.summary.alerts["alerts"] if a["kind"] == "straggler"
        ]
        assert any(
            a["details"]["trial_id"] == slow.trial_id for a in straggler_alerts
        ), f"watchdog missed the straggler: {outcome.summary.alerts}"

        path = analysis.critical_path
        assert path.segments.get("evaluate", 0.0) >= delay

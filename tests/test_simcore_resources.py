"""Tests for DES resources: capacity, stats, priority, stores, containers."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import simcore


def _worker(env, pool, hold, log=None):
    with pool.request() as req:
        yield req
        if log is not None:
            log.append(("start", env.now))
        yield env.timeout(hold)
    if log is not None:
        log.append(("end", env.now))


class TestResource:
    def test_capacity_serializes(self):
        env = simcore.Environment()
        pool = simcore.Resource(env, capacity=1)
        log = []
        env.process(_worker(env, pool, 2.0, log))
        env.process(_worker(env, pool, 2.0, log))
        env.run()
        assert log == [("start", 0.0), ("end", 2.0), ("start", 2.0), ("end", 4.0)]

    def test_parallel_within_capacity(self):
        env = simcore.Environment()
        pool = simcore.Resource(env, capacity=3)
        done = []
        for _ in range(3):
            env.process(_worker(env, pool, 5.0, done))
        env.run()
        assert env.now == 5.0

    def test_capacity_validated(self):
        env = simcore.Environment()
        with pytest.raises(ValueError):
            simcore.Resource(env, capacity=0)

    def test_occupancy_full(self):
        env = simcore.Environment()
        pool = simcore.Resource(env, capacity=1)
        env.process(_worker(env, pool, 10.0))
        env.run()
        assert pool.occupancy() == pytest.approx(1.0)

    def test_occupancy_half(self):
        env = simcore.Environment()
        pool = simcore.Resource(env, capacity=2)
        env.process(_worker(env, pool, 10.0))
        env.run()
        assert pool.occupancy() == pytest.approx(0.5)

    def test_wait_times_recorded(self):
        env = simcore.Environment()
        pool = simcore.Resource(env, capacity=1)
        env.process(_worker(env, pool, 3.0))
        env.process(_worker(env, pool, 3.0))
        env.run()
        waits = pool.stats.wait_times
        assert waits.count == 2
        assert waits.maximum == pytest.approx(3.0)
        assert waits.minimum == pytest.approx(0.0)

    def test_release_unqueues_cancelled_request(self):
        env = simcore.Environment()
        pool = simcore.Resource(env, capacity=1)

        def holder(env):
            with pool.request() as req:
                yield req
                yield env.timeout(10.0)

        def impatient(env):
            req = pool.request()
            result = yield simcore.any_of(env, [req, env.timeout(1.0)])
            if req not in result:
                pool.release(req)  # cancel
                return "gave-up"
            pool.release(req)
            return "served"

        env.process(holder(env))
        p = env.process(impatient(env))
        env.run()
        assert p.value == "gave-up"
        assert pool.queue_length == 0

    @given(capacity=st.integers(1, 5), jobs=st.integers(1, 15), hold=st.floats(0.5, 3.0))
    @settings(max_examples=30, deadline=None)
    def test_invariants(self, capacity, jobs, hold):
        """Makespan and occupancy follow from capacity for identical jobs."""
        env = simcore.Environment()
        pool = simcore.Resource(env, capacity=capacity)
        for _ in range(jobs):
            env.process(_worker(env, pool, hold))
        env.run()
        import math

        waves = math.ceil(jobs / capacity)
        assert env.now == pytest.approx(waves * hold)
        # total busy time = jobs * hold
        assert pool.busy_integral() == pytest.approx(jobs * hold)


class TestPriorityResource:
    def test_priority_order(self):
        env = simcore.Environment()
        pool = simcore.PriorityResource(env, capacity=1)
        order = []

        def job(env, priority, tag):
            req = pool.request(priority=priority)
            yield req
            order.append(tag)
            yield env.timeout(1.0)
            pool.release(req)

        def submit(env):
            # occupy the server so the queue actually forms
            first = pool.request(priority=0)
            yield first
            env.process(job(env, 5, "low"))
            env.process(job(env, 1, "high"))
            env.process(job(env, 3, "mid"))
            yield env.timeout(1.0)
            pool.release(first)

        env.process(submit(env))
        env.run()
        assert order == ["high", "mid", "low"]

    def test_fifo_within_priority(self):
        env = simcore.Environment()
        pool = simcore.PriorityResource(env, capacity=1)
        order = []

        def job(env, tag):
            req = pool.request(priority=1)
            yield req
            order.append(tag)
            pool.release(req)

        def submit(env):
            blocker = pool.request()
            yield blocker
            for tag in ("first", "second"):
                env.process(job(env, tag))
            yield env.timeout(1.0)
            pool.release(blocker)

        env.process(submit(env))
        env.run()
        assert order == ["first", "second"]


class TestStore:
    def test_fifo_items(self):
        env = simcore.Environment()
        store = simcore.Store(env)

        def producer(env):
            for i in range(3):
                yield env.timeout(1.0)
                yield store.put(i)

        def consumer(env, got):
            for _ in range(3):
                item = yield store.get()
                got.append((env.now, item))

        got = []
        env.process(producer(env))
        env.process(consumer(env, got))
        env.run()
        assert [item for _, item in got] == [0, 1, 2]

    def test_bounded_capacity_blocks_put(self):
        env = simcore.Environment()
        store = simcore.Store(env, capacity=1)
        log = []

        def producer(env):
            yield store.put("a")
            log.append(("put-a", env.now))
            yield store.put("b")
            log.append(("put-b", env.now))

        def consumer(env):
            yield env.timeout(5.0)
            item = yield store.get()
            log.append((f"got-{item}", env.now))

        env.process(producer(env))
        env.process(consumer(env))
        env.run()
        assert ("put-b", 5.0) in log


class TestContainer:
    def test_levels(self):
        env = simcore.Environment()
        tank = simcore.Container(env, capacity=10.0, init=5.0)

        def drain(env):
            yield tank.get(3.0)
            return tank.level

        p = env.process(drain(env))
        env.run()
        assert p.value == 2.0

    def test_get_blocks_until_put(self):
        env = simcore.Environment()
        tank = simcore.Container(env, capacity=10.0)

        def getter(env):
            yield tank.get(4.0)
            return env.now

        def putter(env):
            yield env.timeout(7.0)
            yield tank.put(4.0)

        p = env.process(getter(env))
        env.process(putter(env))
        env.run()
        assert p.value == 7.0

    def test_validation(self):
        env = simcore.Environment()
        with pytest.raises(ValueError):
            simcore.Container(env, capacity=0)
        with pytest.raises(ValueError):
            simcore.Container(env, capacity=1.0, init=2.0)
        tank = simcore.Container(env, capacity=1.0)
        with pytest.raises(ValueError):
            tank.put(0)
        with pytest.raises(ValueError):
            tank.get(-1)

"""Tests for the flat suggest tail: incremental updates, parallel tree
fitting, the background refit worker, and the checkpointed refit cadence."""

import threading

import numpy as np
import pytest

from repro.bayesopt import Integer, Optimizer, Real, Space
from repro.errors import ValidationError
from repro.experiments import ExperimentArchive, ExperimentManifest
from repro.observability.digest import PerfRecorder, set_perf
from repro.search.algos import ConcurrencyLimiter, SurrogateSearch
from repro.search.runner import TrialRunner
from repro.surrogate.forest import ExtraTreesRegressor, RandomForestRegressor
from repro.surrogate.gbrt import GBRTQuantile
from repro.surrogate.tree import DecisionTreeRegressor


def _space():
    return Space([Real(-5, 5, name="x"), Real(-5, 5, name="y")])


def _objective(point):
    return float(point[0] ** 2 + point[1] ** 2)


def _campaign(opt, n=40):
    values = []
    for _ in range(n):
        x = opt.ask()
        y = _objective(x)
        opt.tell(x, y)
        values.append(y)
    return values


def _training_data(seed=0, n=120):
    rng = np.random.default_rng(seed)
    X = rng.random((n, 3))
    y = X[:, 0] * 2.0 + np.sin(3 * X[:, 1]) + 0.1 * rng.standard_normal(n)
    return X, y


class TestParallelForestFit:
    @pytest.mark.parametrize("cls", [ExtraTreesRegressor, RandomForestRegressor])
    def test_parallel_fit_byte_identical(self, cls):
        """The thread-pool fit must reproduce the serial ensemble exactly."""
        X, y = _training_data()
        serial = cls(n_estimators=12, random_state=7).fit(X, y)
        threaded = cls(n_estimators=12, random_state=7, n_jobs=3).fit(X, y)
        probe = np.random.default_rng(1).random((64, 3))
        m1, s1 = serial.predict(probe, return_std=True)
        m2, s2 = threaded.predict(probe, return_std=True)
        np.testing.assert_array_equal(m1, m2)
        np.testing.assert_array_equal(s1, s2)

    def test_bad_n_jobs_rejected(self):
        with pytest.raises(ValidationError):
            ExtraTreesRegressor(n_jobs=0)


class TestPartialFit:
    def test_tree_leaf_means_shift(self):
        X, y = _training_data()
        tree = DecisionTreeRegressor(max_depth=4, random_state=0).fit(X, y)
        before = np.asarray(tree.predict(X[:8]))
        tree.partial_fit(X[:8], y[:8] + 5.0)
        after = np.asarray(tree.predict(X[:8]))
        assert np.isfinite(after).all()
        assert (after >= before - 1e-12).all()
        assert after.mean() > before.mean()

    def test_forest_update_preserves_structure(self):
        X, y = _training_data()
        forest = ExtraTreesRegressor(n_estimators=8, random_state=3).fit(X, y)
        nodes_before = [t.node_count for t in forest.estimators_]
        forest.partial_fit(X[:10], y[:10] + 3.0)
        assert [t.node_count for t in forest.estimators_] == nodes_before
        pred = np.asarray(forest.predict(X[:10]))
        assert np.isfinite(pred).all()

    def test_gbrt_appends_stages(self):
        X, y = _training_data()
        model = GBRTQuantile(n_estimators=20, random_state=0).fit(X, y)
        stages = [len(m.estimators_) for m in model._models]
        model.partial_fit(X[:6], y[:6])
        assert all(
            len(m.estimators_) > before
            for m, before in zip(model._models, stages)
        )
        mid, std = model.predict(X[:6], return_std=True)
        assert np.isfinite(mid).all() and np.isfinite(std).all()

    def test_unfitted_partial_fit_rejected(self):
        with pytest.raises(ValidationError):
            DecisionTreeRegressor().partial_fit([[0.0]], [1.0])


class TestIncrementalOptimizer:
    def test_incremental_suppresses_periodic_full_refits(self):
        """With partial_fit absorbing tells, full fits happen O(log n) times
        (first model + dataset doublings) instead of every refit_every."""
        base = Optimizer(_space(), n_initial_points=5, refit_every=1, random_state=11)
        inc = Optimizer(
            _space(), n_initial_points=5, refit_every=1, incremental=True, random_state=11
        )
        _campaign(base, 40)
        _campaign(inc, 40)
        assert base.n_fits > 10
        assert inc.n_fits <= 8
        assert np.isfinite(inc.result().fun)

    def test_default_path_unchanged_by_new_knobs(self):
        """background_refit=False + incremental=False is the seed behaviour:
        two runs (one naming the defaults explicitly) are byte-identical."""
        a = Optimizer(_space(), n_initial_points=5, refit_every=4, random_state=21)
        b = Optimizer(
            _space(),
            n_initial_points=5,
            refit_every=4,
            incremental=False,
            background_refit=False,
            fit_jobs=None,
            random_state=21,
        )
        va = _campaign(a, 30)
        vb = _campaign(b, 30)
        assert va == vb
        assert a.result().fun == b.result().fun
        assert [list(p) for p in a.Xi] == [list(p) for p in b.Xi]


class TestBackgroundRefit:
    def test_background_fits_publish(self):
        opt = Optimizer(
            _space(),
            n_initial_points=5,
            refit_every=2,
            background_refit=True,
            random_state=5,
        )
        try:
            _campaign(opt, 50)
            # Only the very first model fit may block the ask path.
            assert opt.n_fits == 1
            assert opt.n_background_fits >= 1
            assert np.isfinite(opt.result().fun)
        finally:
            opt.close()
        opt.close()  # idempotent

    def test_concurrent_ask_tell_hammer(self):
        """Worker threads ask/tell against in-flight background refits:
        no torn model reads (every prediction path stays finite), and no
        duplicate suggestions across the whole run."""
        opt = Optimizer(
            _space(),
            n_initial_points=6,
            refit_every=1,
            background_refit=True,
            incremental=True,
            random_state=9,
        )
        errors = []
        seen = []
        seen_lock = threading.Lock()

        def worker():
            try:
                for _ in range(15):
                    x = opt.ask()
                    with seen_lock:
                        seen.append(tuple(np.round(x, 9)))
                    opt.tell(x, _objective(x))
            except Exception as exc:  # noqa: BLE001 - surfaced below
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        try:
            assert not errors, errors
            assert len(seen) == 60
            assert len(set(seen)) == 60  # no duplicate suggestions
            result = opt.result()
            assert result.n_evaluations == 60
            assert np.isfinite(result.fun)
            assert np.isfinite(np.asarray(result.func_vals)).all()
        finally:
            opt.close()


class TestRefitCadenceCheckpoint:
    def test_export_state_round_trip(self):
        opt = Optimizer(_space(), n_initial_points=4, refit_every=6, random_state=2)
        _campaign(opt, 20)
        state = opt.export_state()
        replayed = Optimizer(_space(), n_initial_points=4, refit_every=6, random_state=2)
        for x, y in zip(opt.Xi, opt.yi):
            replayed.tell(x, y)
        replayed.restore_state(state)
        assert replayed.export_state() == state

    def test_restore_clamps_to_history(self):
        opt = Optimizer(_space(), n_initial_points=4, random_state=2)
        opt.tell([1.0, 1.0], 2.0)
        opt.restore_state(
            {"fit_told": 99, "full_fit_size": 99, "initial_cursor": 99}
        )
        state = opt.export_state()
        assert state["fit_told"] == 1
        assert state["full_fit_size"] == 1
        assert state["initial_cursor"] == 4

    def test_resume_keeps_cadence_and_gains(self, tmp_path):
        """The searcher state rides in checkpoint.json; a resumed campaign
        restores the refit counters and hedge gains instead of refitting
        blind (no refit storm) or replaying with amnesiac gains."""
        space = _space()
        manifest = ExperimentManifest(name="cadence", seed=1)
        archive = ExperimentArchive(tmp_path, manifest)

        def trainable(config):
            return {"score": config["x"] ** 2 + config["y"] ** 2}

        search = SurrogateSearch(
            space, mode="min", base_estimator="ET", n_initial_points=4,
            refit_every=8, random_state=1,
        )
        runner = TrialRunner(
            trainable,
            search,
            metric="score",
            num_samples=12,
            name="cadence",
            checkpoint=lambda records, state=None: archive.store_checkpoint(
                records, searcher_state=state
            ),
        )
        runner.run()
        saved = archive.load_searcher_state()
        assert saved is not None
        assert saved["optimizer"]["fit_told"] > 0
        assert saved["optimizer"] == search.optimizer.export_state()

        from repro.search.trial import Trial

        resumed = [Trial.from_dict(r) for r in archive.load_checkpoint()]
        assert len(resumed) == 12
        search2 = SurrogateSearch(
            space, mode="min", base_estimator="ET", n_initial_points=4,
            refit_every=8, random_state=1,
        )
        runner2 = TrialRunner(
            trainable,
            search2,
            metric="score",
            num_samples=16,
            name="cadence2",
            resume_trials=resumed,
            resume_searcher_state=saved,
        )
        analysis = runner2.run()
        assert len(analysis.trials) == 16
        # Replay + restore left the cadence counters where the first
        # campaign's checkpoint put them — then the four new trials moved
        # them forward; at no point did the resumed searcher refit-storm.
        assert search2.optimizer.n_fits <= 2

    def test_limiter_delegates_state(self):
        search = SurrogateSearch(
            _space(), base_estimator="ET", n_initial_points=3, random_state=0
        )
        limited = ConcurrencyLimiter(search, 2)
        assert limited.state_dict() == search.state_dict()
        assert limited.fit_count() == 0
        limited.load_state(search.state_dict())
        limited.close()


class TestSuggestDigestSplit:
    def test_suggest_and_suggest_fit_series(self):
        """Fit-bearing asks and amortized suggests land in separate digests,
        and every surrogate fit records a refit observation."""
        perf = PerfRecorder()
        set_perf(perf)
        try:
            space = Space([Integer(0, 40, name="n"), Real(-2, 2, name="r")])
            search = SurrogateSearch(
                space, mode="min", base_estimator="ET", n_initial_points=4,
                refit_every=4, batch_size=4, random_state=0,
            )
            runner = TrialRunner(
                lambda config: {"score": config["n"] + config["r"] ** 2},
                search,
                metric="score",
                num_samples=24,
                name="digest-split",
            )
            runner.run()
            ops = perf.ops()
            assert "suggest" in ops
            assert "suggest_fit" in ops
            assert "refit" in ops
            # One suggest observation per non-fit-bearing candidate; the
            # fit-bearing asks only appear in the suggest_fit series.
            assert ops["suggest"].count + ops["suggest_fit"].count >= 1
            assert ops["refit"].count == search.optimizer.n_fits
            # The split is the point: the amortized path must be far
            # cheaper than the fit-bearing one at the median.
            if ops["suggest"].count and ops["suggest_fit"].count:
                assert ops["suggest"].quantile(0.5) < ops["suggest_fit"].quantile(0.5)
        finally:
            set_perf(None)

"""Tests for Environment.run semantics."""

import pytest

from repro import simcore
from repro.simcore.core import EmptySchedule


class TestRunUntil:
    def test_until_time_stops_clock(self):
        env = simcore.Environment()

        def ticker(env, log):
            while True:
                yield env.timeout(1.0)
                log.append(env.now)

        log = []
        env.process(ticker(env, log))
        env.run(until=3.5)
        assert env.now == 3.5
        assert log == [1.0, 2.0, 3.0]

    def test_until_in_past_rejected(self):
        env = simcore.Environment()
        env.run(until=5.0)
        with pytest.raises(ValueError):
            env.run(until=1.0)

    def test_resume_after_until(self):
        env = simcore.Environment()

        def ticker(env, log):
            for _ in range(5):
                yield env.timeout(1.0)
                log.append(env.now)

        log = []
        env.process(ticker(env, log))
        env.run(until=2.5)
        env.run()
        assert log == [1.0, 2.0, 3.0, 4.0, 5.0]

    def test_until_event_returns_value(self):
        env = simcore.Environment()
        assert env.run(until=env.timeout(2.0, "v")) == "v"

    def test_until_already_processed_event(self):
        env = simcore.Environment()
        ev = env.timeout(1.0, "x")
        env.run()
        assert env.run(until=ev) == "x"

    def test_until_failed_event_raises(self):
        env = simcore.Environment()
        ev = env.event()

        def failer(env, ev):
            yield env.timeout(1.0)
            ev.fail(RuntimeError("deliberate"))

        env.process(failer(env, ev))
        with pytest.raises(RuntimeError, match="deliberate"):
            env.run(until=ev)

    def test_step_on_empty_schedule(self):
        env = simcore.Environment()
        with pytest.raises(EmptySchedule):
            env.step()

    def test_peek(self):
        env = simcore.Environment()
        assert env.peek() == float("inf")
        env.timeout(3.0)
        assert env.peek() == 3.0

    def test_initial_time(self):
        env = simcore.Environment(initial_time=100.0)
        env.timeout(1.0)
        env.run()
        assert env.now == 101.0


class TestScheduleValidation:
    """Non-finite delays would wedge the event heap or hang run()."""

    def test_schedule_rejects_nan_and_inf(self):
        env = simcore.Environment()
        for bad in (float("nan"), float("inf"), -float("inf"), -1.0):
            with pytest.raises(ValueError):
                env.schedule(simcore.Event(env), delay=bad)

    def test_timeout_rejects_nan_and_inf(self):
        env = simcore.Environment()
        for bad in (float("nan"), float("inf"), -0.5):
            with pytest.raises(ValueError):
                env.timeout(bad)

    def test_finite_delays_still_accepted(self):
        env = simcore.Environment()
        env.timeout(0.0)
        env.timeout(3.5)
        env.run()
        assert env.now == 3.5


class TestFastForward:
    def test_shifts_clock_and_pending_events(self):
        env = simcore.Environment()

        def ticker(env, log):
            while True:
                yield env.timeout(10.0)
                log.append(env.now)

        log = []
        env.process(ticker(env, log))
        env.run(until=15.0)  # next tick pending at t=20
        env.fast_forward(100.0)
        assert env.now == 115.0
        assert env.peek() == 120.0
        env.run(until=125.0)
        assert log[-1] == 120.0

    def test_preserves_event_order(self):
        env = simcore.Environment()
        log = []

        def once(env, delay, tag):
            yield env.timeout(delay)
            log.append(tag)

        for delay, tag in ((5.0, "a"), (2.0, "b"), (9.0, "c")):
            env.process(once(env, delay, tag))
        env.fast_forward(50.0)
        env.run()
        assert log == ["b", "a", "c"]
        assert env.now == 59.0

    def test_zero_and_empty_heap_ok(self):
        env = simcore.Environment()
        env.fast_forward(25.0)
        assert env.now == 25.0
        assert env.peek() == float("inf")
        env.fast_forward(0.0)
        assert env.now == 25.0

    def test_rejects_bad_delta(self):
        env = simcore.Environment()
        with pytest.raises(ValueError):
            env.fast_forward(-1.0)
        with pytest.raises(ValueError):
            env.fast_forward(float("inf"))

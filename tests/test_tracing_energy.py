"""Tests for the reservoir sampler, tracing, energy and CSV export."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import BASELINE_CONFIG, IdentificationEngine, WorkloadSpec
from repro.engine.tasks import TaskType
from repro.errors import ValidationError
from repro.utils import ReservoirSampler


class TestReservoirSampler:
    def test_small_stream_stored_exactly(self):
        reservoir = ReservoirSampler(capacity=100, seed=0)
        for v in range(50):
            reservoir.add(float(v))
        assert len(reservoir) == 50
        assert reservoir.seen == 50
        assert reservoir.quantile(0.0) == 0.0
        assert reservoir.quantile(1.0) == 49.0

    def test_capacity_respected(self):
        reservoir = ReservoirSampler(capacity=64, seed=0)
        for v in range(10000):
            reservoir.add(float(v))
        assert len(reservoir) == 64
        assert reservoir.seen == 10000

    def test_quantiles_approximate_distribution(self):
        rng = np.random.default_rng(1)
        reservoir = ReservoirSampler(capacity=2000, seed=0)
        values = rng.normal(10.0, 2.0, size=50000)
        for v in values:
            reservoir.add(float(v))
        assert reservoir.quantile(0.5) == pytest.approx(10.0, abs=0.3)
        ps = reservoir.percentiles((50.0, 95.0))
        assert ps["p95"] == pytest.approx(10.0 + 1.645 * 2.0, abs=0.5)

    @given(st.lists(st.floats(-100, 100), min_size=1, max_size=200))
    @settings(max_examples=40, deadline=None)
    def test_sample_subset_of_stream(self, values):
        reservoir = ReservoirSampler(capacity=32, seed=3)
        for v in values:
            reservoir.add(v)
        stored = reservoir.values()
        for v in stored:
            assert v in np.asarray(values)

    def test_validation(self):
        with pytest.raises(ValidationError):
            ReservoirSampler(capacity=0)
        reservoir = ReservoirSampler(capacity=4)
        with pytest.raises(ValidationError):
            reservoir.quantile(0.5)
        reservoir.add(1.0)
        with pytest.raises(ValidationError):
            reservoir.quantile(1.5)


@pytest.fixture(scope="module")
def traced_run():
    workload = WorkloadSpec(simultaneous_requests=40, duration=180.0, warmup=30.0)
    return IdentificationEngine(BASELINE_CONFIG, workload, seed=2, trace=True).run()


class TestTracing:
    def test_traces_collected_post_warmup(self, traced_run):
        assert traced_run.traces
        assert all(t.submitted >= 0 for t in traced_run.traces)
        # warm-up requests excluded: completion is post-warmup
        assert traced_run.completed_requests == pytest.approx(len(traced_run.traces), abs=2)

    def test_trace_tasks_cover_pipeline(self, traced_run):
        trace = traced_run.traces[0]
        for task in TaskType:
            assert str(task) in trace.tasks, task

    def test_trace_durations_sum_to_response(self, traced_run):
        for trace in traced_run.traces[:50]:
            total = sum(trace.tasks.values())
            # task durations + http-admission wait == response; at 40 clients
            # against 40 HTTP threads there is no admission wait
            assert total == pytest.approx(trace.response_time, rel=1e-6)

    def test_tracing_off_by_default(self):
        workload = WorkloadSpec(simultaneous_requests=10, duration=100.0, warmup=20.0)
        result = IdentificationEngine(BASELINE_CONFIG, workload, seed=2).run()
        assert result.traces == []

    def test_percentiles_ordered(self, traced_run):
        ps = traced_run.response_percentiles
        assert ps["p50"] <= ps["p95"] <= ps["p99"]
        assert ps["p50"] == pytest.approx(traced_run.user_response_time.mean, rel=0.25)


class TestEnergy:
    def test_energy_positive_and_bounded(self, traced_run):
        measured_h = (traced_run.workload.duration - traced_run.workload.warmup) / 3600.0
        params = traced_run.workload  # durations only
        assert traced_run.node_energy_wh > 120.0 * measured_h  # above idle
        assert traced_run.node_energy_wh < 420.0 * measured_h  # below max
        assert traced_run.gpu_energy_wh > 0

    def test_energy_grows_with_load(self):
        def energy(requests):
            workload = WorkloadSpec(simultaneous_requests=requests, duration=150.0, warmup=30.0)
            result = IdentificationEngine(BASELINE_CONFIG, workload, seed=3).run()
            return result.node_energy_wh + result.gpu_energy_wh

        assert energy(80) > energy(10)


class TestCsvExport:
    def test_roundtrip(self, traced_run, tmp_path):
        paths = traced_run.export_csv(tmp_path)
        names = {p.name for p in paths}
        assert "user_resp_time.csv" not in names  # series use canonical names
        assert "user_response_time.csv" in names
        assert "node_power_w.csv" in names
        assert "traces.csv" in names
        series_file = tmp_path / "user_response_time.csv"
        lines = series_file.read_text().strip().splitlines()
        assert lines[0] == "time,value"
        assert len(lines) == len(traced_run.series.user_response_time) + 1
        trace_lines = (tmp_path / "traces.csv").read_text().strip().splitlines()
        assert trace_lines[0].startswith("submitted,response_time,")
        assert len(trace_lines) == len(traced_run.traces) + 1

"""Tests for forests, GBRT and the remaining surrogates."""

import numpy as np
import pytest

from repro.errors import ValidationError
from repro.surrogate import (
    DummyRegressor,
    ExtraTreesRegressor,
    GBRTQuantile,
    GradientBoostingRegressor,
    KNeighborsRegressor,
    PolynomialRegressor,
    RandomForestRegressor,
    get_surrogate,
)


def _dataset(rng, n=150):
    X = rng.uniform(-2, 2, size=(n, 3))
    y = np.sin(X[:, 0]) + 0.5 * X[:, 1] ** 2 - X[:, 2] + 0.05 * rng.normal(size=n)
    return X, y


class TestForests:
    @pytest.mark.parametrize("cls", [RandomForestRegressor, ExtraTreesRegressor])
    def test_learns_nonlinear_function(self, cls, rng):
        X, y = _dataset(rng)
        model = cls(n_estimators=30, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.85

    @pytest.mark.parametrize("cls", [RandomForestRegressor, ExtraTreesRegressor])
    def test_std_positive_and_varies(self, cls, rng):
        X, y = _dataset(rng)
        model = cls(n_estimators=20, random_state=0).fit(X, y)
        _, std = model.predict(rng.uniform(-2, 2, size=(40, 3)), return_std=True)
        assert (std > 0).all()

    def test_extrapolation_uncertainty_larger(self, rng):
        """Ensemble spread should grow away from the training data."""
        X, y = _dataset(rng)
        model = RandomForestRegressor(n_estimators=40, random_state=0).fit(X, y)
        _, std_in = model.predict(np.zeros((1, 3)), return_std=True)
        _, std_out = model.predict(np.full((1, 3), 1.9), return_std=True)
        assert std_out[0] > 0  # sanity; spread exists at the edge

    def test_reproducible_with_seed(self, rng):
        X, y = _dataset(rng)
        a = ExtraTreesRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X[:10])
        b = ExtraTreesRegressor(n_estimators=10, random_state=5).fit(X, y).predict(X[:10])
        assert np.array_equal(a, b)

    def test_validation(self):
        with pytest.raises(ValidationError):
            RandomForestRegressor(n_estimators=0)
        with pytest.raises(ValidationError):
            ExtraTreesRegressor().predict([[0, 0, 0]])


class TestGBRT:
    def test_ls_loss_learns(self, rng):
        X, y = _dataset(rng)
        model = GradientBoostingRegressor(n_estimators=80, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.9

    def test_quantile_ordering(self, rng):
        """The 0.16 / 0.5 / 0.84 quantile models must mostly not cross."""
        X, y = _dataset(rng, n=300)
        model = GBRTQuantile(n_estimators=60, random_state=0).fit(X, y)
        Xt = rng.uniform(-2, 2, size=(100, 3))
        lo = model._models[0].predict(Xt)
        hi = model._models[2].predict(Xt)
        assert np.mean(hi >= lo) > 0.9

    def test_quantile_calibration(self, rng):
        """About half the targets should fall under the median model."""
        X, y = _dataset(rng, n=400)
        model = GradientBoostingRegressor(
            n_estimators=60, loss="quantile", quantile=0.5, random_state=0
        ).fit(X, y)
        frac_below = float(np.mean(y <= model.predict(X)))
        assert 0.35 <= frac_below <= 0.65

    def test_subsample(self, rng):
        X, y = _dataset(rng)
        model = GradientBoostingRegressor(n_estimators=30, subsample=0.5, random_state=0).fit(X, y)
        assert model.score(X, y) > 0.7

    def test_validation(self):
        with pytest.raises(ValidationError):
            GradientBoostingRegressor(learning_rate=0.0)
        with pytest.raises(ValidationError):
            GradientBoostingRegressor(loss="huber")
        with pytest.raises(ValidationError):
            GBRTQuantile(quantiles=(0.5, 0.16, 0.84))


class TestSimpleSurrogates:
    def test_polynomial_exact_on_quadratic(self, rng):
        X = rng.uniform(-1, 1, size=(80, 2))
        y = 1.0 + 2.0 * X[:, 0] - X[:, 1] + 0.5 * X[:, 0] * X[:, 1]
        model = PolynomialRegressor(degree=2).fit(X, y)
        assert model.score(X, y) > 0.999

    def test_polynomial_std_constant(self, rng):
        X, y = _dataset(rng)
        model = PolynomialRegressor(degree=2).fit(X, y)
        _, std = model.predict(X[:20], return_std=True)
        assert np.allclose(std, std[0])

    def test_knn_interpolates(self, rng):
        X, y = _dataset(rng)
        model = KNeighborsRegressor(n_neighbors=1).fit(X, y)
        assert model.predict(X) == pytest.approx(y)

    def test_knn_uniform_weights(self, rng):
        X, y = _dataset(rng)
        model = KNeighborsRegressor(n_neighbors=5, weights="uniform").fit(X, y)
        assert model.score(X, y) > 0.7

    def test_dummy_predicts_mean(self, rng):
        X, y = _dataset(rng)
        model = DummyRegressor().fit(X, y)
        mean, std = model.predict(X[:5], return_std=True)
        assert np.allclose(mean, y.mean())
        assert np.allclose(std, y.std())


class TestGetSurrogate:
    @pytest.mark.parametrize(
        "alias,expected",
        [("ET", "ET"), ("rf", "RF"), ("GBRT", "GBRT"), ("gp", "GP"), ("kriging", "GP")],
    )
    def test_aliases(self, alias, expected):
        assert get_surrogate(alias).name == expected

    def test_unknown(self):
        with pytest.raises(ValidationError):
            get_surrogate("transformer")

"""Tests for engine scale-out and decomposed optimization."""

import pytest

from repro.engine import AnalyticEngineModel, ThreadPoolConfig
from repro.errors import ValidationError
from repro.optimizer import DecomposedOptimization
from repro.plantnet import BASELINE, REFINED_OPTIMUM, ScaleOutScenario, paper_problem


class TestScaleOut:
    @pytest.fixture(scope="class")
    def scenario(self):
        return ScaleOutScenario(duration=220.0, warmup=40.0, base_seed=3)

    def test_one_replica_matches_plain_engine(self, scenario):
        result = scenario.run(BASELINE, 80, replicas=1)
        assert result.replicas == 1
        assert result.user_response_time.mean == pytest.approx(2.57, rel=0.05)

    def test_two_replicas_halve_load(self, scenario):
        one = scenario.run(BASELINE, 160, replicas=1)
        two = scenario.run(BASELINE, 160, replicas=2)
        assert two.user_response_time.mean < one.user_response_time.mean * 0.6
        assert two.total_throughput > one.total_throughput * 1.5

    def test_gpu_memory_scales_with_replicas(self, scenario):
        result = scenario.run(REFINED_OPTIMUM, 160, replicas=2)
        assert result.total_gpu_memory_gb == pytest.approx(
            2 * result.gpu_memory_gb_per_node
        )

    def test_uneven_split(self, scenario):
        result = scenario.run(BASELINE, 85, replicas=2)
        populations = [r.workload.simultaneous_requests for r in result.per_replica]
        assert sorted(populations) == [42, 43]

    def test_replicas_needed(self, scenario):
        needed, result = scenario.replicas_needed(REFINED_OPTIMUM, 250, tolerance_s=4.0)
        assert result.meets_tolerance(4.0)
        if needed > 1:
            worse = scenario.run(REFINED_OPTIMUM, 250, replicas=needed - 1)
            assert not worse.meets_tolerance(4.0)

    def test_validation(self, scenario):
        with pytest.raises(ValidationError):
            scenario.run(BASELINE, 80, replicas=0)
        with pytest.raises(ValidationError):
            scenario.run(BASELINE, 80, replicas=99)
        with pytest.raises(ValidationError):
            scenario.run(BASELINE, 1, replicas=2)

    def test_impossible_tolerance_raises(self, scenario):
        with pytest.raises(ValidationError, match="cannot serve"):
            scenario.replicas_needed(BASELINE, 3000, tolerance_s=1.0)


class TestDecomposedOptimization:
    @staticmethod
    def _evaluator():
        model = AnalyticEngineModel()

        def evaluate(config):
            return {
                "user_resp_time": model.response_time(
                    ThreadPoolConfig(
                        http=config["http"],
                        download=config["download"],
                        extract=config["extract"],
                        simsearch=config["simsearch"],
                    ),
                    80,
                )
            }

        return evaluate

    def test_partition_enforced(self):
        with pytest.raises(ValidationError, match="partition"):
            DecomposedOptimization(
                paper_problem(),
                self._evaluator(),
                groups={"a": ["http"], "b": ["extract"]},  # misses two dims
            )
        with pytest.raises(ValidationError, match="partition"):
            DecomposedOptimization(
                paper_problem(),
                self._evaluator(),
                groups={
                    "a": ["http", "download", "simsearch", "extract"],
                    "b": ["http"],  # duplicated
                },
            )

    def test_improves_over_midpoint(self):
        problem = paper_problem()
        evaluator = self._evaluator()
        decomposed = DecomposedOptimization(
            problem,
            evaluator,
            groups={"admission": ["http", "download"], "compute": ["extract", "simsearch"]},
            seed=0,
        )
        result = decomposed.run(rounds=2, budget_per_block=8)
        midpoint = {dim.name: dim.from_unit(0.5) for dim in problem.space}
        midpoint_value = problem.scalarize(evaluator(midpoint))
        assert result.best_value < midpoint_value
        assert result.n_evaluations == 2 * 2 * 8
        assert result.best_value < 2.55  # reaches the good basin

    def test_block_history_monotone(self):
        result = DecomposedOptimization(
            paper_problem(),
            self._evaluator(),
            groups={"g1": ["http", "download"], "g2": ["extract", "simsearch"]},
            seed=1,
        ).run(rounds=2, budget_per_block=6)
        values = [value for _, _, value in result.block_history]
        assert values == sorted(values, reverse=True)

    def test_initial_configuration_respected(self):
        captured = []
        evaluator = self._evaluator()

        def spy(config):
            captured.append(dict(config))
            return evaluator(config)

        DecomposedOptimization(
            paper_problem(),
            spy,
            groups={"g1": ["http"], "g2": ["download", "extract", "simsearch"]},
            seed=0,
        ).run(
            rounds=1,
            budget_per_block=3,
            initial_configuration={"http": 40, "download": 40, "extract": 7, "simsearch": 40},
        )
        # the first block varies only http; everything else is pinned
        for config in captured[:3]:
            assert config["download"] == 40
            assert config["extract"] == 7

    def test_validation(self):
        dec = DecomposedOptimization(
            paper_problem(),
            self._evaluator(),
            groups={"all": ["http", "download", "extract", "simsearch"]},
        )
        with pytest.raises(ValidationError):
            dec.run(rounds=0)
        with pytest.raises(ValidationError):
            dec.run(budget_per_block=1)
        with pytest.raises(ValidationError):
            dec.run(initial_configuration={"http": 40})

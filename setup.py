"""Legacy setup shim.

The execution environment for this reproduction is offline and lacks the
``wheel`` package, so PEP 517 editable installs fail. Keeping a ``setup.py``
lets ``pip install -e .`` fall back to the legacy ``develop`` path. All
metadata lives in ``pyproject.toml``.
"""

from setuptools import setup

setup()
